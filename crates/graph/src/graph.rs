//! Core graph types: simple undirected [`Graph`], directed [`Digraph`], and
//! their weighted counterparts.
//!
//! Nodes are dense indices `0..n`; this matches the paper's setting where
//! vertex identity carries no payload and lets every algorithm use flat
//! `Vec`-indexed state. Callers that need labelled vertices keep their own
//! side table.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// Node identifier: a dense index in `0..node_count()`.
pub type NodeId = usize;

/// A simple undirected graph (no self-loops, no parallel edges).
///
/// # Examples
///
/// ```
/// use csn_graph::Graph;
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1);
/// assert!(g.has_edge(1, 0));
/// assert_eq!(g.degree(1), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

/// Structural equality: same node count and same edge *set* (adjacency-list
/// order is an implementation detail).
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        if self.node_count() != other.node_count() || self.edge_count != other.edge_count {
            return false;
        }
        self.edges().all(|(u, v)| other.has_edge(u, v))
    }
}

impl Eq for Graph {}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Builds a graph from an edge list; `n` is the node count.
    ///
    /// Duplicate edges and self-loops are ignored, so the result is simple.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.check_node(u)?;
            g.check_node(v)?;
            if u != v {
                g.add_edge(u, v);
            }
        }
        Ok(g)
    }

    fn check_node(&self, u: NodeId) -> Result<(), GraphError> {
        if u >= self.node_count() {
            Err(GraphError::NodeOutOfRange { node: u, node_count: self.node_count() })
        } else {
            Ok(())
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the undirected edge `(u, v)`. Returns `true` if the edge was new.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range, or if `u == v` (simple graph).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(u < self.node_count() && v < self.node_count(), "node out of range");
        assert_ne!(u, v, "self-loops are not allowed in a simple graph");
        if self.has_edge(u, v) {
            return false;
        }
        self.adj[u].push(v);
        self.adj[v].push(u);
        self.edge_count += 1;
        true
    }

    /// Removes the undirected edge `(u, v)` if present; returns whether it existed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let Some(pos) = self.adj[u].iter().position(|&w| w == v) else {
            return false;
        };
        self.adj[u].swap_remove(pos);
        let pos_v = self.adj[v].iter().position(|&w| w == u).expect("asymmetric adjacency");
        self.adj[v].swap_remove(pos_v);
        self.edge_count -= 1;
        true
    }

    /// Appends a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Tests whether the edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Scan the smaller adjacency list.
        let (a, b) = if self.adj[u].len() <= self.adj[v].len() { (u, v) } else { (v, u) };
        self.adj[a].contains(&b)
    }

    /// Neighbors of `u`.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u].len()
    }

    /// Iterator over node ids `0..n`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.node_count()
    }

    /// Iterator over all edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, ns)| ns.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Returns the subgraph induced by `keep` (nodes are re-indexed densely),
    /// together with the mapping `old -> new` (`None` for dropped nodes).
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Graph, Vec<Option<NodeId>>) {
        assert_eq!(keep.len(), self.node_count());
        let mut map = vec![None; self.node_count()];
        let mut next = 0;
        for u in self.nodes() {
            if keep[u] {
                map[u] = Some(next);
                next += 1;
            }
        }
        let mut g = Graph::new(next);
        for (u, v) in self.edges() {
            if let (Some(nu), Some(nv)) = (map[u], map[v]) {
                g.add_edge(nu, nv);
            }
        }
        (g, map)
    }

    /// Degree sequence (unsorted, indexed by node).
    pub fn degrees(&self) -> Vec<usize> {
        self.adj.iter().map(Vec::len).collect()
    }

    /// Converts to a directed graph with both arc directions per edge.
    pub fn to_digraph(&self) -> Digraph {
        let mut d = Digraph::new(self.node_count());
        for (u, v) in self.edges() {
            d.add_arc(u, v);
            d.add_arc(v, u);
        }
        d
    }
}

/// A directed graph (no parallel arcs; self-loops disallowed).
///
/// # Examples
///
/// ```
/// use csn_graph::Digraph;
///
/// let mut d = Digraph::new(2);
/// d.add_arc(0, 1);
/// assert!(d.has_arc(0, 1));
/// assert!(!d.has_arc(1, 0));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Digraph {
    out: Vec<Vec<NodeId>>,
    inn: Vec<Vec<NodeId>>,
    arc_count: usize,
}

/// Structural equality: same node count and same arc *set*.
impl PartialEq for Digraph {
    fn eq(&self, other: &Self) -> bool {
        if self.node_count() != other.node_count() || self.arc_count != other.arc_count {
            return false;
        }
        self.arcs().all(|(u, v)| other.has_arc(u, v))
    }
}

impl Eq for Digraph {}

impl Digraph {
    /// Creates a digraph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Digraph { out: vec![Vec::new(); n], inn: vec![Vec::new(); n], arc_count: 0 }
    }

    /// Builds a digraph from an arc list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is `>= n`.
    pub fn from_arcs(n: usize, arcs: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut d = Digraph::new(n);
        for &(u, v) in arcs {
            if u >= n || v >= n {
                return Err(GraphError::NodeOutOfRange { node: u.max(v), node_count: n });
            }
            if u != v {
                d.add_arc(u, v);
            }
        }
        Ok(d)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arc_count
    }

    /// Adds arc `u -> v`; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn add_arc(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(u < self.node_count() && v < self.node_count(), "node out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        if self.out[u].contains(&v) {
            return false;
        }
        self.out[u].push(v);
        self.inn[v].push(u);
        self.arc_count += 1;
        true
    }

    /// Removes arc `u -> v` if present; returns whether it existed.
    pub fn remove_arc(&mut self, u: NodeId, v: NodeId) -> bool {
        let Some(pos) = self.out[u].iter().position(|&w| w == v) else {
            return false;
        };
        self.out[u].swap_remove(pos);
        let pos_in = self.inn[v].iter().position(|&w| w == u).expect("asymmetric arc lists");
        self.inn[v].swap_remove(pos_in);
        self.arc_count -= 1;
        true
    }

    /// Reverses arc `u -> v` into `v -> u`; returns whether `u -> v` existed.
    pub fn reverse_arc(&mut self, u: NodeId, v: NodeId) -> bool {
        if self.remove_arc(u, v) {
            self.add_arc(v, u);
            true
        } else {
            false
        }
    }

    /// Tests whether arc `u -> v` exists.
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.out[u].contains(&v)
    }

    /// Out-neighbors of `u`.
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.out[u]
    }

    /// In-neighbors of `u`.
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.inn[u]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out[u].len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.inn[u].len()
    }

    /// Iterator over node ids.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.node_count()
    }

    /// Iterator over all arcs `(u, v)`.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out.iter().enumerate().flat_map(|(u, ns)| ns.iter().map(move |&v| (u, v)))
    }

    /// Nodes with out-degree zero ("sinks"; cf. link reversal in §III-B).
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes().filter(|&u| self.out_degree(u) == 0).collect()
    }

    /// Returns `true` if the digraph has no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Topological order if acyclic, else `None` (Kahn's algorithm).
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.node_count();
        let mut indeg: Vec<usize> = (0..n).map(|u| self.in_degree(u)).collect();
        let mut queue: Vec<NodeId> = (0..n).filter(|&u| indeg[u] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &v in self.out_neighbors(u) {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// The underlying undirected graph (arc direction dropped).
    pub fn to_undirected(&self) -> Graph {
        let mut g = Graph::new(self.node_count());
        for (u, v) in self.arcs() {
            if !g.has_edge(u, v) {
                g.add_edge(u, v);
            }
        }
        g
    }
}

/// An undirected graph with `f64` edge weights.
///
/// # Examples
///
/// ```
/// use csn_graph::WeightedGraph;
///
/// let mut g = WeightedGraph::new(3);
/// g.add_edge(0, 1, 2.5);
/// assert_eq!(g.weight(1, 0), Some(2.5));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WeightedGraph {
    adj: Vec<Vec<(NodeId, f64)>>,
    edge_count: usize,
}

impl WeightedGraph {
    /// Creates a weighted graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        WeightedGraph { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds edge `(u, v)` with weight `w`; replaces the weight if present.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) {
        assert!(u < self.node_count() && v < self.node_count(), "node out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        if let Some(e) = self.adj[u].iter_mut().find(|(x, _)| *x == v) {
            e.1 = w;
            let e2 = self.adj[v].iter_mut().find(|(x, _)| *x == u).expect("asymmetric");
            e2.1 = w;
            return;
        }
        self.adj[u].push((v, w));
        self.adj[v].push((u, w));
        self.edge_count += 1;
    }

    /// Weight of edge `(u, v)` if it exists.
    pub fn weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.adj[u].iter().find(|(x, _)| *x == v).map(|&(_, w)| w)
    }

    /// Weighted neighbors of `u` as `(neighbor, weight)` pairs.
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, f64)] {
        &self.adj[u]
    }

    /// Iterator over node ids.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.node_count()
    }

    /// Iterator over edges as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, ns)| {
            ns.iter().filter(move |&&(v, _)| u < v).map(move |&(v, w)| (u, v, w))
        })
    }

    /// The unweighted skeleton of this graph.
    pub fn to_unweighted(&self) -> Graph {
        let mut g = Graph::new(self.node_count());
        for (u, v, _) in self.edges() {
            g.add_edge(u, v);
        }
        g
    }
}

/// A directed graph with `f64` arc weights (e.g. capacities for max-flow).
///
/// # Examples
///
/// ```
/// use csn_graph::WeightedDigraph;
///
/// let mut d = WeightedDigraph::new(2);
/// d.add_arc(0, 1, 4.0);
/// assert_eq!(d.weight(0, 1), Some(4.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WeightedDigraph {
    out: Vec<Vec<(NodeId, f64)>>,
    arc_count: usize,
}

impl WeightedDigraph {
    /// Creates a weighted digraph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        WeightedDigraph { out: vec![Vec::new(); n], arc_count: 0 }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arc_count
    }

    /// Adds arc `u -> v` with weight `w`; replaces the weight if present.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn add_arc(&mut self, u: NodeId, v: NodeId, w: f64) {
        assert!(u < self.node_count() && v < self.node_count(), "node out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        if let Some(e) = self.out[u].iter_mut().find(|(x, _)| *x == v) {
            e.1 = w;
            return;
        }
        self.out[u].push((v, w));
        self.arc_count += 1;
    }

    /// Weight of arc `u -> v` if it exists.
    pub fn weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.out[u].iter().find(|(x, _)| *x == v).map(|&(_, w)| w)
    }

    /// Weighted out-neighbors of `u`.
    pub fn out_neighbors(&self, u: NodeId) -> &[(NodeId, f64)] {
        &self.out[u]
    }

    /// Iterator over node ids.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.node_count()
    }

    /// Iterator over arcs as `(u, v, w)`.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.out.iter().enumerate().flat_map(|(u, ns)| ns.iter().map(move |&(v, w)| (u, v, w)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_add_remove_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "duplicate edge must be rejected");
        assert!(g.add_edge(1, 2));
        assert_eq!(g.edge_count(), 2);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(2, 1));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn graph_rejects_self_loop() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    fn graph_from_edges_validates() {
        let err = Graph::from_edges(2, &[(0, 5)]).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 5, node_count: 2 });
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 2)]).unwrap();
        assert_eq!(g.edge_count(), 1, "dups and self-loops dropped");
    }

    #[test]
    fn graph_edges_iterator_is_canonical() {
        let g = Graph::from_edges(4, &[(2, 1), (3, 0), (0, 1)]).unwrap();
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn induced_subgraph_reindexes() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let keep = vec![true, false, true, true, false];
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 1, "only (2,3) survives");
        assert_eq!(map[2], Some(1));
        assert_eq!(map[1], None);
        assert!(sub.has_edge(1, 2));
    }

    #[test]
    fn digraph_arcs_and_reversal() {
        let mut d = Digraph::new(3);
        d.add_arc(0, 1);
        d.add_arc(1, 2);
        assert_eq!(d.arc_count(), 2);
        assert_eq!(d.in_degree(2), 1);
        assert!(d.reverse_arc(0, 1));
        assert!(d.has_arc(1, 0));
        assert!(!d.has_arc(0, 1));
        assert!(!d.reverse_arc(0, 1), "arc no longer in that direction");
    }

    #[test]
    fn digraph_topological_order() {
        let d = Digraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let order = d.topological_order().expect("DAG");
        let pos: Vec<_> = {
            let mut p = vec![0; 4];
            for (i, &u) in order.iter().enumerate() {
                p[u] = i;
            }
            p
        };
        for (u, v) in d.arcs() {
            assert!(pos[u] < pos[v]);
        }
        assert!(d.is_acyclic());

        let cyc = Digraph::from_arcs(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(!cyc.is_acyclic());
        assert!(cyc.topological_order().is_none());
    }

    #[test]
    fn digraph_sinks() {
        let d = Digraph::from_arcs(4, &[(0, 1), (2, 1)]).unwrap();
        let mut s = d.sinks();
        s.sort_unstable();
        assert_eq!(s, vec![1, 3]);
    }

    #[test]
    fn weighted_graph_updates_weight() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 9.0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.weight(1, 0), Some(9.0));
        assert_eq!(g.weight(1, 2), None);
    }

    #[test]
    fn weighted_digraph_is_directional() {
        let mut d = WeightedDigraph::new(3);
        d.add_arc(0, 1, 3.0);
        assert_eq!(d.weight(0, 1), Some(3.0));
        assert_eq!(d.weight(1, 0), None);
        d.add_arc(0, 1, 5.0);
        assert_eq!(d.arc_count(), 1);
        assert_eq!(d.weight(0, 1), Some(5.0));
    }

    #[test]
    fn to_digraph_round_trip() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let d = g.to_digraph();
        assert_eq!(d.arc_count(), 4);
        assert_eq!(d.to_undirected(), g);
    }
}
