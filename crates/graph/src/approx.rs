//! Sampling-based approximate centrality for the million-node tier:
//! source-sampled betweenness (Brandes–Pich pivots) and source-sampled
//! closeness (Eppstein–Wang), with Hoeffding-style error bounds.
//!
//! Exact betweenness is `O(n·m)` and exact closeness `O(n·m)` — at n = 10⁶
//! that is a million BFS sweeps. Both kernels are *averages over sources*,
//! so sampling `k` sources and rescaling by `n/k` gives unbiased estimates
//! whose worst-case error shrinks as `1/√k` (see [`betweenness_epsilon`]).
//!
//! # The ε-agreement gate
//!
//! Approximation code is only trustworthy relative to the exact kernels, so
//! this module is gated two ways (property tests in `scale_props.rs` plus
//! the `perf_smoke --scale` gates):
//!
//! 1. **Full sampling degenerates exactly.** With `samples >= n` the source
//!    set is `0..n` in order and the rescale factor is exactly `1.0`, so
//!    [`betweenness_sampled`] and [`closeness_sampled`] reproduce
//!    [`crate::centrality::betweenness_centrality`] /
//!    [`crate::centrality::closeness_centrality`] **bit-for-bit** — same
//!    per-source kernels, same fold order, and `x * 1.0` / integer-valued
//!    f64 arithmetic below 2⁵³ are exact.
//! 2. **Partial sampling agrees within ε.** On small graphs where the exact
//!    answer is affordable, the pair-normalized deviation must stay inside
//!    the documented [`betweenness_epsilon`] bound.
//!
//! # Performance
//!
//! Cost is `k/n` of the exact kernel: `O(k·m)` time, `O(n)` extra space
//! (one scratch arena, reused across sources — no per-source allocation).
//! Traversed-edges/s at n = 10⁶ is recorded in the committed
//! `BENCH_scale.json`; [`crate::parallel::betweenness_sampled_par`] fans
//! the sampled sources over the worker pool bit-identically to
//! [`betweenness_sampled`]. See SCALING.md for how ε, k, and runtime trade
//! off.
//!
//! # Examples
//!
//! ```
//! use csn_graph::{approx, centrality, generators};
//!
//! let g = generators::barabasi_albert(200, 3, 42).unwrap();
//! // Full sampling: bit-identical to the exact kernel.
//! assert_eq!(
//!     approx::betweenness_sampled(&g, 200, 7),
//!     centrality::betweenness_centrality(&g),
//! );
//! // Quarter sampling: 4x cheaper, within the documented bound.
//! let approx_bc = approx::betweenness_sampled(&g, 50, 7);
//! assert_eq!(approx_bc.len(), 200);
//! ```

use crate::centrality::brandes_delta_into;
use crate::graph::NodeId;
use crate::scratch::{BfsScratch, BrandesScratch};
use crate::view::GraphView;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws `k` distinct source nodes uniformly from `0..n`, returned sorted
/// ascending (partial Fisher–Yates). `k >= n` returns all of `0..n` — the
/// degenerate case the exact-agreement gate relies on.
pub fn sample_sources(n: usize, k: usize, seed: u64) -> Vec<NodeId> {
    if k >= n {
        return (0..n).collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<NodeId> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool.sort_unstable();
    pool
}

/// Source-sampled betweenness (Brandes–Pich): runs the exact per-source
/// Brandes kernel on `samples` uniformly drawn sources and rescales the
/// accumulated dependencies by `n / k`.
///
/// The estimate is unbiased. With `samples >= n` the result is
/// **bit-identical** to [`crate::centrality::betweenness_centrality`]:
/// sources are `0..n` in the same fold order and the rescale is exactly
/// `1.0`. Error bound: see [`betweenness_epsilon`].
///
/// # Panics
///
/// Panics if `samples == 0` on a non-empty graph.
pub fn betweenness_sampled<G: GraphView>(g: &G, samples: usize, seed: u64) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    assert!(samples > 0, "need at least one sampled source");
    let sources = sample_sources(n, samples, seed);
    let mut bc = vec![0.0f64; n];
    let mut sc = BrandesScratch::new();
    let mut delta = Vec::new();
    for &s in &sources {
        brandes_delta_into(g, s, &mut sc, &mut delta);
        for (b, d) in bc.iter_mut().zip(&delta) {
            *b += d;
        }
    }
    // `x * 1.0 / 2.0` at full sampling is bitwise `x / 2.0`, preserving the
    // exact kernel's halving.
    let scale = n as f64 / sources.len() as f64;
    for b in &mut bc {
        *b = *b * scale / 2.0;
    }
    bc
}

/// Source-sampled closeness (Eppstein–Wang): one BFS per sampled source,
/// crediting the distance to every *reached* node, then the Wasserman–Faust
/// reachable-fraction form over the sample-extrapolated counts.
///
/// For node `u`, the sampled sources other than `u` itself are a uniform
/// draw of `k_eff = k − [u ∈ sample]` of its `n − 1` potential partners, so
/// `r̂ = cnt · (n−1) / k_eff` and `ŝ = sum · (n−1) / k_eff` estimate the
/// reachable count and distance sum, and the score is
/// `(r̂ / (n−1)) · (r̂ / ŝ)` — the same expression
/// [`crate::centrality::closeness_one`] evaluates. With `samples >= n` all
/// counts are complete, the extrapolation factor is exactly `1.0`, and the
/// result is **bit-identical** to
/// [`crate::centrality::closeness_centrality`] (integer-valued f64
/// arithmetic below 2⁵³ is exact).
///
/// # Panics
///
/// Panics if `samples == 0` on a graph with more than one node.
pub fn closeness_sampled<G: GraphView>(g: &G, samples: usize, seed: u64) -> Vec<f64> {
    let n = g.node_count();
    if n <= 1 {
        return vec![0.0; n];
    }
    assert!(samples > 0, "need at least one sampled source");
    let sources = sample_sources(n, samples, seed);
    let k = sources.len();
    let mut cnt = vec![0u32; n];
    let mut sum = vec![0u64; n];
    let mut in_sample = vec![false; n];
    let mut sc = BfsScratch::new();
    for &s in &sources {
        in_sample[s] = true;
        // Undirected: dist(s, v) = dist(v, s), so one BFS from s credits
        // every reached node's estimate at once.
        crate::traversal::bfs_scratch(g, s, &mut sc);
        for v in 0..n {
            if sc.visited(v) && sc.dist[v] > 0 {
                cnt[v] += 1;
                sum[v] += sc.dist[v] as u64;
            }
        }
    }
    let m = (n - 1) as f64;
    (0..n)
        .map(|u| {
            let k_eff = k - usize::from(in_sample[u]);
            if k_eff == 0 || sum[u] == 0 {
                return 0.0;
            }
            let scale = m / k_eff as f64;
            let r_hat = f64::from(cnt[u]) * scale;
            let s_hat = sum[u] as f64 * scale;
            (r_hat / m) * (r_hat / s_hat)
        })
        .collect()
}

/// Hoeffding-style uniform error bound for [`betweenness_sampled`]: with
/// probability at least `1 − delta`, every node's **pair-normalized**
/// betweenness estimate (raw score divided by `(n−1)(n−2)/2`, the maximum
/// raw undirected score) deviates from the exact value by at most the
/// returned ε.
///
/// Derivation (Brandes–Pich 2007): each sampled source contributes a
/// normalized term in `[0, 1]`, so Hoeffding gives
/// `P(|est − exact| ≥ ε) ≤ 2·exp(−2kε²)` per node; a union bound over `n`
/// nodes yields `ε = sqrt(ln(2n/δ) / (2k))`. The bound is conservative —
/// measured deviations in `BENCH_scale.json` sit well inside it.
///
/// # Panics
///
/// Panics unless `samples > 0` and `0 < delta < 1`.
pub fn betweenness_epsilon(n: usize, samples: usize, delta: f64) -> f64 {
    assert!(samples > 0, "need at least one sampled source");
    assert!(delta > 0.0 && delta < 1.0, "delta = {delta} not in (0, 1)");
    ((2.0 * n as f64 / delta).ln() / (2.0 * samples as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centrality::{betweenness_centrality, closeness_centrality};
    use crate::generators;

    #[test]
    fn sample_sources_sorted_unique_and_degenerate() {
        let s = sample_sources(100, 20, 3);
        assert_eq!(s.len(), 20);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted and unique: {s:?}");
        assert!(s.iter().all(|&v| v < 100));
        assert_eq!(sample_sources(10, 10, 3), (0..10).collect::<Vec<_>>());
        assert_eq!(sample_sources(10, 99, 3), (0..10).collect::<Vec<_>>());
        assert_eq!(sample_sources(50, 7, 5), sample_sources(50, 7, 5));
        assert_ne!(sample_sources(50, 7, 5), sample_sources(50, 7, 6));
    }

    #[test]
    fn full_sampling_is_bitwise_exact() {
        for seed in [1, 99] {
            let g = generators::erdos_renyi(70, 0.08, seed).unwrap();
            assert_eq!(betweenness_sampled(&g, 70, 5), betweenness_centrality(&g));
            assert_eq!(betweenness_sampled(&g, 1000, 5), betweenness_centrality(&g));
            assert_eq!(closeness_sampled(&g, 70, 5), closeness_centrality(&g));
            assert_eq!(closeness_sampled(&g, 1000, 5), closeness_centrality(&g));
        }
    }

    #[test]
    fn sampled_betweenness_within_epsilon_bound() {
        let n = 120;
        let g = generators::barabasi_albert(n, 3, 11).unwrap();
        let exact = betweenness_centrality(&g);
        let approx = betweenness_sampled(&g, n / 4, 17);
        let norm = ((n - 1) * (n - 2)) as f64 / 2.0;
        let eps = betweenness_epsilon(n, n / 4, 0.05);
        let worst =
            exact.iter().zip(&approx).map(|(e, a)| (e - a).abs() / norm).fold(0.0f64, f64::max);
        assert!(worst <= eps, "normalized deviation {worst} exceeds bound {eps}");
    }

    #[test]
    fn sampled_closeness_tracks_exact_ranking() {
        let g = generators::barabasi_albert(150, 3, 4).unwrap();
        let exact = closeness_centrality(&g);
        let approx = closeness_sampled(&g, 60, 9);
        // Connected BA graph: every estimate positive, scores close, and
        // the clearly-central vs clearly-peripheral contrast survives.
        let worst = exact.iter().zip(&approx).map(|(e, a)| (e - a).abs()).fold(0.0f64, f64::max);
        assert!(worst < 0.12, "worst absolute closeness deviation {worst}");
        let hi = exact.iter().cloned().fold(f64::MIN, f64::max);
        let hub = exact.iter().position(|&e| e == hi).unwrap();
        assert!(approx[hub] >= approx.iter().cloned().fold(f64::MAX, f64::min));
    }

    #[test]
    fn sampled_kernels_are_seeded() {
        let g = generators::watts_strogatz(80, 3, 0.2, 2).unwrap();
        assert_eq!(betweenness_sampled(&g, 20, 5), betweenness_sampled(&g, 20, 5));
        assert_ne!(betweenness_sampled(&g, 20, 5), betweenness_sampled(&g, 20, 6));
        assert_eq!(closeness_sampled(&g, 20, 5), closeness_sampled(&g, 20, 5));
    }

    #[test]
    fn epsilon_bound_shrinks_with_samples() {
        let a = betweenness_epsilon(1000, 10, 0.05);
        let b = betweenness_epsilon(1000, 100, 0.05);
        let c = betweenness_epsilon(1000, 1000, 0.05);
        assert!(a > b && b > c);
        assert!(c > 0.0);
        // Tighter confidence costs a wider interval.
        assert!(betweenness_epsilon(1000, 100, 0.01) > betweenness_epsilon(1000, 100, 0.1));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = crate::Graph::new(0);
        assert!(betweenness_sampled(&g, 5, 0).is_empty());
        assert!(closeness_sampled(&g, 5, 0).is_empty());
        let g = crate::Graph::new(1);
        assert_eq!(closeness_sampled(&g, 5, 0), vec![0.0]);
    }

    #[test]
    fn sampled_kernels_accept_compact_csr() {
        let g = generators::barabasi_albert(100, 2, 8).unwrap();
        let c = crate::compact::CompactCsrGraph::from_graph(&g).unwrap();
        assert_eq!(betweenness_sampled(&g, 25, 3), betweenness_sampled(&c, 25, 3));
        assert_eq!(closeness_sampled(&g, 25, 3), closeness_sampled(&c, 25, 3));
    }
}
