//! Graph traversal: BFS/DFS, connectivity, and strongly connected components.
//!
//! Every function here is generic over [`GraphView`] / [`DigraphView`], so
//! it runs unchanged on the mutable adjacency-list types and on their frozen
//! CSR counterparts ([`crate::CsrGraph`], [`crate::CsrDigraph`]).

use crate::graph::NodeId;
use crate::scratch::BfsScratch;
use crate::view::{DigraphView, GraphView};

/// Runs the BFS from `source`, leaving the distances epoch-stamped inside
/// the scratch (no dense export). Shared by [`bfs_distances_into`] and
/// [`crate::centrality::closeness_one_into`].
pub(crate) fn bfs_scratch<G: GraphView>(g: &G, source: NodeId, sc: &mut BfsScratch) {
    sc.begin(g.node_count());
    sc.visit(source, 0);
    sc.queue.push_back(source);
    while let Some(u) = sc.queue.pop_front() {
        let du = sc.dist[u];
        for v in g.neighbors(u) {
            if !sc.visited(v) {
                sc.visit(v, du + 1);
                sc.queue.push_back(v);
            }
        }
    }
}

/// BFS distances (in hops) from `source`; unreachable nodes get `usize::MAX`.
///
/// Allocates fresh state per call; the scratch-reusing form is
/// [`bfs_distances_into`], which produces identical output.
///
/// # Examples
///
/// ```
/// use csn_graph::{Graph, traversal::bfs_distances};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
/// let d = bfs_distances(&g, 0);
/// assert_eq!(d[2], 2);
/// assert_eq!(d[3], usize::MAX);
/// ```
pub fn bfs_distances<G: GraphView>(g: &G, source: NodeId) -> Vec<usize> {
    let mut sc = BfsScratch::new();
    let mut out = Vec::new();
    bfs_distances_into(g, source, &mut sc, &mut out);
    out
}

/// [`bfs_distances`] into a caller-provided scratch and output vector:
/// identical results, zero allocation once both have grown to the graph's
/// size. The scratch may have been used on any other graph before (see the
/// reuse contract in [`crate::scratch`]); `out` is overwritten.
pub fn bfs_distances_into<G: GraphView>(
    g: &G,
    source: NodeId,
    scratch: &mut BfsScratch,
    out: &mut Vec<usize>,
) {
    bfs_scratch(g, source, scratch);
    out.clear();
    out.extend((0..g.node_count()).map(|v| {
        if scratch.visited(v) {
            scratch.dist[v]
        } else {
            usize::MAX
        }
    }));
}

/// BFS distance vectors from every source: `out[s][v]` is the hop distance
/// from `s` to `v` (`usize::MAX` when unreachable). The serial counterpart
/// of [`crate::parallel::all_pairs_bfs_par`]. One BFS scratch is reused
/// across all sources.
pub fn all_pairs_bfs<G: GraphView>(g: &G) -> Vec<Vec<usize>> {
    let mut sc = BfsScratch::new();
    g.nodes()
        .map(|s| {
            let mut row = Vec::new();
            bfs_distances_into(g, s, &mut sc, &mut row);
            row
        })
        .collect()
}

/// BFS distances from `source` following arc directions in a digraph.
pub fn bfs_distances_digraph<D: DigraphView>(d: &D, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; d.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for v in d.out_neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Shortest hop path from `source` to `target` via BFS, if one exists.
pub fn bfs_path<G: GraphView>(g: &G, source: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
    let mut parent = vec![usize::MAX; g.node_count()];
    let mut seen = vec![false; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    seen[source] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        if u == target {
            let mut path = vec![target];
            let mut cur = target;
            while cur != source {
                cur = parent[cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for v in g.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    None
}

/// DFS preorder starting at `source` (iterative; neighbor order as stored).
pub fn dfs_preorder<G: GraphView>(g: &G, source: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        if seen[u] {
            continue;
        }
        seen[u] = true;
        order.push(u);
        // Push in reverse so the first-stored neighbor is visited first.
        for v in g.neighbors(u).rev() {
            if !seen[v] {
                stack.push(v);
            }
        }
    }
    order
}

/// Connected-component labels: `labels[u]` is the component id of `u`,
/// components numbered `0..k` in order of discovery. Returns `(labels, k)`.
pub fn connected_components<G: GraphView>(g: &G) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut k = 0;
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        label[s] = k;
        while let Some(u) = stack.pop() {
            for v in g.neighbors(u) {
                if label[v] == usize::MAX {
                    label[v] = k;
                    stack.push(v);
                }
            }
        }
        k += 1;
    }
    (label, k)
}

/// `true` when the graph is connected (the empty graph counts as connected).
pub fn is_connected<G: GraphView>(g: &G) -> bool {
    g.node_count() == 0 || connected_components(g).1 == 1
}

/// Nodes of the largest connected component, as a keep-mask.
pub fn largest_component_mask<G: GraphView>(g: &G) -> Vec<bool> {
    let (labels, k) = connected_components(g);
    if k == 0 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; k];
    for &l in &labels {
        sizes[l] += 1;
    }
    let best = (0..k).max_by_key(|&c| sizes[c]).expect("k > 0");
    labels.iter().map(|&l| l == best).collect()
}

/// Strongly connected components of a digraph (Tarjan, iterative).
///
/// Returns `(labels, k)`; components are numbered in reverse topological
/// order of the condensation (Tarjan's natural output order).
pub fn strongly_connected_components<D: DigraphView>(d: &D) -> (Vec<usize>, usize) {
    let n = d.node_count();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0usize;
    let mut ncomp = 0usize;

    // Explicit DFS stack of (node, remaining-neighbor iterator).
    let mut call: Vec<(NodeId, D::OutNeighbors<'_>)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        call.push((root, d.out_neighbors(root)));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some((u, it)) = call.last_mut() {
            let u = *u;
            if let Some(v) = it.next() {
                if index[v] == UNSET {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call.push((v, d.out_neighbors(v)));
                } else if on_stack[v] {
                    lowlink[u] = lowlink[u].min(index[v]);
                }
            } else {
                call.pop();
                if let Some((p, _)) = call.last() {
                    let p = *p;
                    lowlink[p] = lowlink[p].min(lowlink[u]);
                }
                if lowlink[u] == index[u] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = ncomp;
                        if w == u {
                            break;
                        }
                    }
                    ncomp += 1;
                }
            }
        }
    }
    (comp, ncomp)
}

/// Keep-mask of the largest strongly connected component (as in the paper's
/// Fig. 3, which plots the largest SCC of a Gnutella snapshot).
pub fn largest_scc_mask<D: DigraphView>(d: &D) -> Vec<bool> {
    let (labels, k) = strongly_connected_components(d);
    if k == 0 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; k];
    for &l in &labels {
        sizes[l] += 1;
    }
    let best = (0..k).max_by_key(|&c| sizes[c]).expect("k > 0");
    labels.iter().map(|&l| l == best).collect()
}

/// Graph diameter in hops via repeated BFS; `None` if disconnected or empty.
pub fn diameter<G: GraphView>(g: &G) -> Option<usize> {
    if g.node_count() == 0 || !is_connected(g) {
        return None;
    }
    let mut best = 0;
    for s in g.nodes() {
        let d = bfs_distances(g, s);
        best = best.max(d.into_iter().max().expect("nonempty"));
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Digraph, Graph};

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_path_endpoints() {
        let g = path_graph(4);
        assert_eq!(bfs_path(&g, 0, 3), Some(vec![0, 1, 2, 3]));
        assert_eq!(bfs_path(&g, 2, 2), Some(vec![2]));
        let g2 = Graph::new(2);
        assert_eq!(bfs_path(&g2, 0, 1), None);
    }

    #[test]
    fn dfs_preorder_visits_all_reachable() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (2, 3)]).unwrap();
        let order = dfs_preorder(&g, 0);
        assert_eq!(order.len(), 4, "node 4 is unreachable");
        assert_eq!(order[0], 0);
    }

    #[test]
    fn components_and_connectivity() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert!(!is_connected(&g));
        assert!(is_connected(&path_graph(4)));
        assert!(is_connected(&Graph::new(0)));
    }

    #[test]
    fn largest_component() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mask = largest_component_mask(&g);
        assert_eq!(mask, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn scc_cycle_plus_tail() {
        let d = Digraph::from_arcs(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]).unwrap();
        let (labels, k) = strongly_connected_components(&d);
        assert_eq!(k, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[3], labels[4]);
        let mask = largest_scc_mask(&d);
        assert_eq!(mask, vec![true, true, true, false, false]);
    }

    #[test]
    fn scc_handles_large_path_without_overflow() {
        // Iterative Tarjan: a long path must not blow the stack.
        let n = 100_000;
        let arcs: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let d = Digraph::from_arcs(n, &arcs).unwrap();
        let (_, k) = strongly_connected_components(&d);
        assert_eq!(k, n);
    }

    #[test]
    fn diameter_of_path_and_disconnected() {
        assert_eq!(diameter(&path_graph(5)), Some(4));
        assert_eq!(diameter(&Graph::new(3)), None);
    }

    #[test]
    fn bfs_into_reuses_scratch_across_graphs() {
        // One scratch, alternating between a large and a small graph:
        // epoch stamping must keep stale distances from leaking through.
        let big = path_graph(9);
        let small = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut sc = BfsScratch::new();
        let mut out = Vec::new();
        for _ in 0..3 {
            bfs_distances_into(&big, 0, &mut sc, &mut out);
            assert_eq!(out, bfs_distances(&big, 0));
            bfs_distances_into(&small, 1, &mut sc, &mut out);
            assert_eq!(out, vec![1, 0, usize::MAX]);
        }
    }

    #[test]
    fn kernels_agree_on_frozen_graph() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (2, 3), (4, 5)]).unwrap();
        let csr = g.freeze();
        assert_eq!(bfs_distances(&g, 0), bfs_distances(&csr, 0));
        assert_eq!(dfs_preorder(&g, 0), dfs_preorder(&csr, 0));
        assert_eq!(connected_components(&g), connected_components(&csr));
        assert_eq!(bfs_path(&g, 0, 3), bfs_path(&csr, 0, 3));
        assert_eq!(all_pairs_bfs(&g), all_pairs_bfs(&csr));
    }

    #[test]
    fn scc_agrees_on_frozen_digraph() {
        let d = Digraph::from_arcs(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]).unwrap();
        assert_eq!(strongly_connected_components(&d), strongly_connected_components(&d.freeze()));
        assert_eq!(bfs_distances_digraph(&d, 0), bfs_distances_digraph(&d.freeze(), 0));
    }
}
