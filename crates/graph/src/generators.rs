//! Graph generators: classical random models, geometric/unit-disk graphs,
//! hypercubes, and the Gnutella-like peer-to-peer topology used by the NSF
//! experiment (Fig. 3 of the paper).
//!
//! All random generators take an explicit seed so experiments are
//! reproducible run-to-run.
//!
//! # Performance
//!
//! These generators build mutable adjacency-list [`Graph`]s — one heap `Vec`
//! per node — which is the right tool up to ~10⁵ nodes. Past that, use the
//! streaming twins in [`crate::stream`], which emit the same models straight
//! into compact CSR with no per-node allocation:
//! [`barabasi_albert`] ⇄ [`crate::stream::BaStream`] (exact RNG twin, same
//! edges in the same order), [`random_geometric`] ⇄
//! [`crate::stream::GeometricStream`] (same edge set via a grid-bucket scan
//! instead of the `O(n²)` pair loop here). Build throughput for both tiers
//! is recorded in the committed `BENCH_scale.json` (see SCALING.md).

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::stream::EdgeStream;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A path `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    g
}

/// A cycle on `n >= 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut g = path(n);
    g.add_edge(n - 1, 0);
    g
}

/// A star with one center (node 0) and `leaves` leaves.
///
/// The paper notes (§II-A) that a star with six or more leaves is **not** a
/// unit disk graph — see `csn-intersection` for the check.
pub fn star(leaves: usize) -> Graph {
    let mut g = Graph::new(leaves + 1);
    for i in 1..=leaves {
        g.add_edge(0, i);
    }
    g
}

/// The complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// An `rows × cols` 4-neighbor grid; node `(r, c)` has id `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let u = r * cols + c;
            if c + 1 < cols {
                g.add_edge(u, u + 1);
            }
            if r + 1 < rows {
                g.add_edge(u, u + cols);
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `0 <= p <= 1`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter(format!("p = {p} not in [0, 1]")));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(u, v);
            }
        }
    }
    Ok(g)
}

/// Barabási–Albert preferential attachment: each new node attaches to `m`
/// existing nodes with probability proportional to degree.
///
/// Produces the scale-free degree distribution the paper's layering section
/// builds on (power-law exponent ≈ 3 for plain BA).
///
/// Delegates to [`crate::stream::BaStream`], its exact RNG twin — the
/// streamed compact-CSR build and this adjacency-list build share one edge
/// sequence, so they agree edge-for-edge *and* in neighbor order.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `1 <= m < n`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Result<Graph, GraphError> {
    Ok(crate::stream::BaStream::new(n, m, seed)?.to_graph())
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side, each edge rewired with probability `beta`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for out-of-range `beta` or `k`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameter(format!("beta = {beta} not in [0, 1]")));
    }
    if k == 0 || 2 * k >= n {
        return Err(GraphError::InvalidParameter(format!("need 1 <= k < n/2, got k={k}, n={n}")));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Build the full ring lattice first, then rewire edge-by-edge. Rewiring
    // an existing edge (remove + add) keeps the edge count invariant at
    // `n * k`; drawing targets against the complete graph avoids the bug
    // where a rewired edge collides with a lattice edge added later.
    let mut g = Graph::new(n);
    for u in 0..n {
        for j in 1..=k {
            g.add_edge(u, (u + j) % n);
        }
    }
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            if rng.gen::<f64>() < beta && g.has_edge(u, v) {
                // Rewire to a uniform random non-neighbor, if one exists.
                let mut tries = 0;
                loop {
                    let w = rng.gen_range(0..n);
                    if w != u && !g.has_edge(u, w) {
                        g.remove_edge(u, v);
                        g.add_edge(u, w);
                        break;
                    }
                    tries += 1;
                    if tries > 10 * n {
                        // Dense corner case: keep the lattice edge.
                        break;
                    }
                }
            }
        }
    }
    Ok(g)
}

/// Geometric positions on the unit square plus the induced unit-disk graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GeometricGraph {
    /// The unit-disk graph: nodes within `radius` are adjacent.
    pub graph: Graph,
    /// Node positions in `[0, 1]²`.
    pub positions: Vec<(f64, f64)>,
    /// Connection radius.
    pub radius: f64,
}

/// Random geometric graph: `n` uniform points in the unit square, edges
/// between pairs within `radius` (a random unit disk graph, §II-A).
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> GeometricGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let positions: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    GeometricGraph { graph: unit_disk_from_points(&positions, radius), positions, radius }
}

/// Unit-disk graph over explicit points: edge iff Euclidean distance ≤ `radius`.
pub fn unit_disk_from_points(points: &[(f64, f64)], radius: f64) -> Graph {
    let n = points.len();
    let r2 = radius * radius;
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = points[u].0 - points[v].0;
            let dy = points[u].1 - points[v].1;
            if dx * dx + dy * dy <= r2 {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Kleinberg's small-world grid (§I of the paper; Kleinberg STOC'00):
/// an `side × side` grid plus, per node, `q` long-range contacts chosen with
/// probability proportional to `manhattan_distance⁻ᵅ`.
///
/// With `alpha = 2` (the inverse-square distribution the paper highlights),
/// greedy routing finds short paths with high probability.
pub fn kleinberg_grid(side: usize, q: usize, alpha: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = side * side;
    let mut g = grid(side, side);
    // Ring sampling: on the (infinite) grid there are 4r cells at Manhattan
    // distance r, so the ring distance distribution is ∝ 4r·r^{-alpha};
    // sample a ring from its CDF, then a uniform cell on the ring, and
    // reject cells outside the finite grid. O(1) expected per contact for
    // interior nodes instead of O(n) per node.
    let max_r = 2 * (side - 1);
    let mut ring_cdf: Vec<f64> = Vec::with_capacity(max_r);
    let mut acc = 0.0;
    for r in 1..=max_r {
        // weight = (#cells = 4r) · r^-alpha = 4 · r^{1-alpha}
        acc += 4.0 * (r as f64).powf(1.0 - alpha);
        ring_cdf.push(acc);
    }
    let total = acc;
    for u in 0..n {
        let (ur, uc) = (u / side, u % side);
        let mut added = 0;
        let mut attempts = 0;
        while added < q && attempts < 200 * q {
            attempts += 1;
            let x = rng.gen::<f64>() * total;
            let r = 1 + ring_cdf.partition_point(|&c| c <= x).min(max_r - 1);
            // Uniform cell on the Manhattan ring of radius r around (ur, uc):
            // parametrize by a signed row offset dr in [-r, r] and the two
            // column choices (except at the poles).
            let dr = rng.gen_range(-(r as isize)..=(r as isize));
            let rem = r as isize - dr.abs();
            let dc = if rem == 0 {
                0
            } else if rng.gen::<bool>() {
                rem
            } else {
                -rem
            };
            let (vr, vc) = (ur as isize + dr, uc as isize + dc);
            if vr < 0 || vc < 0 || vr >= side as isize || vc >= side as isize {
                continue;
            }
            let v = vr as usize * side + vc as usize;
            if v != u && !g.has_edge(u, v) {
                g.add_edge(u, v);
                added += 1;
            }
        }
    }
    g
}

/// An `n`-dimensional binary hypercube: nodes are bit strings `0..2ⁿ`,
/// adjacent iff they differ in exactly one bit (§IV-C, Fig. 9).
pub fn hypercube(dims: u32) -> Graph {
    let n = 1usize << dims;
    let mut g = Graph::new(n);
    for u in 0..n {
        for b in 0..dims {
            let v = u ^ (1usize << b);
            if u < v {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A generalized hypercube with per-dimension radices `radix[i]` (Fig. 6):
/// nodes are mixed-radix tuples, adjacent iff they differ in exactly one
/// coordinate (in *any* value, not just ±1).
///
/// Node id of tuple `(x₀, …, x_{d-1})` is the mixed-radix number
/// `x₀ + x₁·r₀ + x₂·r₀r₁ + …`.
pub fn generalized_hypercube(radix: &[usize]) -> Graph {
    let n: usize = radix.iter().product();
    let mut g = Graph::new(n.max(1));
    if radix.is_empty() {
        return g;
    }
    for u in 0..n {
        // Decode u, then for each dimension enumerate the other radix-1 values.
        let mut stride = 1usize;
        for &r in radix {
            let digit = (u / stride) % r;
            for other in 0..r {
                if other != digit {
                    let v =
                        (u as isize + (other as isize - digit as isize) * stride as isize) as usize;
                    if u < v {
                        g.add_edge(u, v);
                    }
                }
            }
            stride *= r;
        }
    }
    g
}

/// A Gnutella-like peer-to-peer overlay: Barabási–Albert backbone with a
/// degree cap (ultrapeer fan-out limits) and a fraction of random rewiring.
///
/// Substitute for the Gnutella-08 snapshot used in the paper's Fig. 3 (see
/// DESIGN.md §3): what matters for the NSF experiment is a heavy-tailed,
/// approximately power-law degree distribution, which this generator has by
/// construction.
///
/// # Errors
///
/// Propagates parameter errors from [`barabasi_albert`].
pub fn gnutella_like(n: usize, m: usize, rewire: f64, seed: u64) -> Result<Graph, GraphError> {
    let base = barabasi_albert(n, m, seed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut edges: Vec<(NodeId, NodeId)> = base.edges().collect();
    edges.shuffle(&mut rng);
    let k = ((edges.len() as f64) * rewire) as usize;
    let mut g = base;
    for &(u, v) in edges.iter().take(k) {
        // Rewire one endpoint to a random node, keeping the graph simple.
        let w = rng.gen_range(0..n);
        if w != u && w != v && !g.has_edge(u, w) {
            g.remove_edge(u, v);
            g.add_edge(u, w);
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{connected_components, is_connected};

    #[test]
    fn deterministic_generators_have_expected_shape() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(star(6).edge_count(), 6);
        assert_eq!(star(6).degree(0), 6);
        assert_eq!(complete(5).edge_count(), 10);
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn erdos_renyi_edge_density_close_to_p() {
        let g = erdos_renyi(400, 0.05, 42).unwrap();
        let expected = 0.05 * (400.0 * 399.0 / 2.0);
        let actual = g.edge_count() as f64;
        assert!((actual - expected).abs() < 0.15 * expected, "{actual} vs {expected}");
    }

    #[test]
    fn erdos_renyi_is_seeded() {
        assert_eq!(erdos_renyi(50, 0.2, 7).unwrap(), erdos_renyi(50, 0.2, 7).unwrap());
        assert_ne!(erdos_renyi(50, 0.2, 7).unwrap(), erdos_renyi(50, 0.2, 8).unwrap());
    }

    #[test]
    fn erdos_renyi_rejects_bad_p() {
        assert!(erdos_renyi(10, 1.5, 0).is_err());
    }

    #[test]
    fn barabasi_albert_min_degree_and_connectivity() {
        let g = barabasi_albert(500, 3, 1).unwrap();
        assert!(is_connected(&g));
        for u in g.nodes() {
            assert!(g.degree(u) >= 3, "node {u} has degree {}", g.degree(u));
        }
        // Preferential attachment should create at least one hub.
        let max_deg = g.degrees().into_iter().max().unwrap();
        assert!(max_deg > 20, "expected a hub, max degree {max_deg}");
    }

    #[test]
    fn barabasi_albert_rejects_bad_m() {
        assert!(barabasi_albert(5, 0, 0).is_err());
        assert!(barabasi_albert(5, 5, 0).is_err());
    }

    #[test]
    fn watts_strogatz_beta_zero_is_ring_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 3).unwrap();
        assert_eq!(g.edge_count(), 40);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    fn watts_strogatz_rewiring_keeps_edge_count() {
        let g = watts_strogatz(100, 3, 0.3, 5).unwrap();
        assert_eq!(g.edge_count(), 300);
    }

    #[test]
    fn unit_disk_radius_controls_edges() {
        let pts = vec![(0.0, 0.0), (0.05, 0.0), (0.5, 0.5)];
        let g = unit_disk_from_points(&pts, 0.1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        let g2 = unit_disk_from_points(&pts, 1.0);
        assert_eq!(g2.edge_count(), 3);
    }

    #[test]
    fn random_geometric_positions_in_unit_square() {
        let gg = random_geometric(100, 0.2, 9);
        assert_eq!(gg.positions.len(), 100);
        for &(x, y) in &gg.positions {
            assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn kleinberg_grid_adds_long_range_contacts() {
        let side = 10;
        let base_edges = grid(side, side).edge_count();
        let g = kleinberg_grid(side, 1, 2.0, 11);
        assert!(g.edge_count() > base_edges, "long-range contacts added");
        assert!(is_connected(&g));
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 4 * 16 / 2);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
            for &v in g.neighbors(u) {
                assert_eq!((u ^ v).count_ones(), 1);
            }
        }
    }

    #[test]
    fn generalized_hypercube_matches_fig6() {
        // Fig. 6: gender (2) × occupation (2) × nationality (3) = 12 nodes.
        let g = generalized_hypercube(&[2, 2, 3]);
        assert_eq!(g.node_count(), 12);
        // Degree = (2-1) + (2-1) + (3-1) = 4 for every node.
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
        // Binary case degenerates to the binary hypercube.
        let b = generalized_hypercube(&[2, 2, 2]);
        assert_eq!(b, hypercube(3));
    }

    #[test]
    fn gnutella_like_is_heavy_tailed() {
        let g = gnutella_like(2000, 3, 0.1, 13).unwrap();
        assert_eq!(g.node_count(), 2000);
        let (_, k) = connected_components(&g);
        assert!(k <= 20, "rewiring must not shatter the graph, got {k} components");
        let max_deg = g.degrees().into_iter().max().unwrap();
        assert!(max_deg > 30, "expected hubs, max degree {max_deg}");
    }
}
