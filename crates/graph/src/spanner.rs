//! Greedy graph spanners.
//!
//! §III-A: "a property is an approximate for a global measure. For example,
//! subgraph distances closely resemble the distances in the original graph
//! for designing approximation algorithms" (the paper's \[8\]). The greedy
//! `t`-spanner is the classical structural-trimming realization of that
//! idea: keep an edge only if the subgraph built so far cannot already
//! connect its endpoints within `t` times the edge weight.

use crate::graph::{NodeId, WeightedGraph};

/// Builds the greedy `t`-spanner of `g` (`t >= 1`): edges are scanned in
/// non-decreasing weight order and kept iff the spanner-so-far distance
/// between the endpoints exceeds `t · w`.
///
/// The result has stretch at most `t`: for every edge `(u, v, w)` of `g`,
/// `dist_spanner(u, v) <= t · w`, hence for every pair
/// `dist_spanner <= t · dist_g`.
///
/// # Panics
///
/// Panics if `t < 1`.
pub fn greedy_spanner(g: &WeightedGraph, t: f64) -> WeightedGraph {
    assert!(t >= 1.0, "stretch must be at least 1");
    let mut edges: Vec<(NodeId, NodeId, f64)> = g.edges().collect();
    edges.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite weights"));
    let mut spanner = WeightedGraph::new(g.node_count());
    for (u, v, w) in edges {
        if bounded_distance(&spanner, u, v, t * w) > t * w {
            spanner.add_edge(u, v, w);
        }
    }
    spanner
}

/// Dijkstra from `u` with early exit once `v` is settled or all distances
/// exceed `bound`; returns `dist(u, v)` (possibly `inf`).
fn bounded_distance(g: &WeightedGraph, u: NodeId, v: NodeId, bound: f64) -> f64 {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    dist[u] = 0.0;
    let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
    let key = |d: f64| d.to_bits(); // non-negative floats order by bits
    heap.push(Reverse((key(0.0), u)));
    while let Some(Reverse((db, x))) = heap.pop() {
        let d = f64::from_bits(db);
        if d > dist[x] {
            continue;
        }
        if x == v {
            return d;
        }
        if d > bound {
            return f64::INFINITY; // beyond the useful horizon
        }
        for &(y, w) in g.neighbors(x) {
            let nd = d + w;
            if nd < dist[y] {
                dist[y] = nd;
                heap.push(Reverse((key(nd), y)));
            }
        }
    }
    dist[v]
}

/// Measures the worst observed pairwise stretch of `spanner` w.r.t. `g`
/// (exact all-pairs; intended for validation on moderate graphs).
pub fn max_stretch(g: &WeightedGraph, spanner: &WeightedGraph) -> f64 {
    let mut worst: f64 = 1.0;
    for s in g.nodes() {
        let dg = crate::shortest_path::dijkstra(g, s).dist;
        let dsp = crate::shortest_path::dijkstra(spanner, s).dist;
        for v in g.nodes() {
            if v != s && dg[v].is_finite() && dg[v] > 0.0 {
                worst = worst.max(dsp[v] / dg[v]);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_weighted(n: usize, p: f64, seed: u64) -> WeightedGraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < p {
                    g.add_edge(u, v, 0.1 + rng.gen::<f64>());
                }
            }
        }
        g
    }

    #[test]
    fn stretch_bound_holds() {
        for &t in &[1.5f64, 2.0, 4.0] {
            let g = random_weighted(60, 0.3, 7);
            let sp = greedy_spanner(&g, t);
            let stretch = max_stretch(&g, &sp);
            assert!(stretch <= t + 1e-9, "t={t}: observed stretch {stretch}");
        }
    }

    #[test]
    fn larger_t_trims_more() {
        let g = random_weighted(80, 0.4, 3);
        let s15 = greedy_spanner(&g, 1.5);
        let s3 = greedy_spanner(&g, 3.0);
        let s6 = greedy_spanner(&g, 6.0);
        assert!(s3.edge_count() <= s15.edge_count());
        assert!(s6.edge_count() <= s3.edge_count());
        assert!(s6.edge_count() < g.edge_count(), "dense graph must be trimmed");
    }

    #[test]
    fn spanner_preserves_connectivity() {
        let g = random_weighted(50, 0.2, 9);
        let sp = greedy_spanner(&g, 3.0);
        use crate::traversal::connected_components;
        let (c1, k1) = connected_components(&g.to_unweighted());
        let (c2, k2) = connected_components(&sp.to_unweighted());
        assert_eq!(k1, k2);
        let _ = (c1, c2);
    }

    #[test]
    fn t_one_keeps_shortest_path_edges() {
        // With t = 1 every edge that is the unique shortest route between
        // its endpoints must survive.
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 5.0);
        let sp = greedy_spanner(&g, 1.0);
        assert!(sp.weight(0, 1).is_some());
        assert!(sp.weight(1, 2).is_some());
        // 0-2 via 1 costs 2.0 <= 1 * 5.0: trimmed.
        assert!(sp.weight(0, 2).is_none());
    }

    #[test]
    #[should_panic(expected = "stretch")]
    fn rejects_sub_unit_stretch() {
        greedy_spanner(&WeightedGraph::new(2), 0.5);
    }
}
