//! Plain-text edge-list (de)serialization.
//!
//! Format: one `u v` pair per line for [`Graph`]/[`Digraph`]; lines starting
//! with `#` are comments (the SNAP dataset convention, matching the Gnutella
//! snapshots the paper's Fig. 3 uses).

use crate::error::GraphError;
use crate::graph::{Digraph, Graph};
use std::io::{BufRead, Write};

/// Writes `g` as an undirected edge list.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# structura undirected edge list: {} nodes", g.node_count())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Writes `d` as a directed arc list.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_arc_list<W: Write>(d: &Digraph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# structura directed arc list: {} nodes", d.node_count())?;
    for (u, v) in d.arcs() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Reads an undirected edge list. Node count is `1 + max index` unless a
/// larger `min_nodes` is given.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines.
pub fn read_edge_list<R: BufRead>(r: R, min_nodes: usize) -> Result<Graph, GraphError> {
    let edges = parse_pairs(r)?;
    let n = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0).max(min_nodes);
    Graph::from_edges(n, &edges)
}

/// Reads a directed arc list, analogous to [`read_edge_list`].
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines.
pub fn read_arc_list<R: BufRead>(r: R, min_nodes: usize) -> Result<Digraph, GraphError> {
    let arcs = parse_pairs(r)?;
    let n = arcs.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0).max(min_nodes);
    Digraph::from_arcs(n, &arcs)
}

fn parse_pairs<R: BufRead>(r: R) -> Result<Vec<(usize, usize)>, GraphError> {
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line.map_err(|e| GraphError::Parse(format!("i/o error: {e}")))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<usize, GraphError> {
            tok.ok_or_else(|| GraphError::Parse(format!("line {}: missing field", lineno + 1)))?
                .parse::<usize>()
                .map_err(|e| GraphError::Parse(format!("line {}: {e}", lineno + 1)))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        out.push((u, v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_undirected() {
        let g = generators::erdos_renyi(30, 0.2, 1).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), 30).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn round_trip_directed() {
        let d = Digraph::from_arcs(4, &[(0, 1), (1, 2), (3, 0)]).unwrap();
        let mut buf = Vec::new();
        write_arc_list(&d, &mut buf).unwrap();
        let d2 = read_arc_list(buf.as_slice(), 0).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# comment\n\n0 1\n  # indented comment\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn malformed_line_is_an_error() {
        let text = "0 1\nbogus\n";
        let err = read_edge_list(text.as_bytes(), 0).unwrap_err();
        assert!(matches!(err, GraphError::Parse(_)));
        let text2 = "0\n";
        assert!(read_edge_list(text2.as_bytes(), 0).is_err());
    }

    #[test]
    fn min_nodes_pads_isolated_vertices() {
        let g = read_edge_list("0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(g.node_count(), 10);
    }
}
