//! Error types for the graph substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node index was out of range for the graph it was used with.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// A self-loop was requested on a simple graph.
    SelfLoop(usize),
    /// A negative-weight cycle was detected (e.g. by Bellman–Ford).
    NegativeCycle,
    /// Parameters passed to a generator were inconsistent.
    InvalidParameter(String),
    /// An input file or string could not be parsed.
    Parse(String),
    /// A count did not fit the compact `u32` index space (node ids or CSR
    /// offsets). Raised instead of silently wrapping when a graph near
    /// `u32::MAX` nodes (or `u32::MAX` packed adjacency entries) is frozen
    /// into a compact representation.
    IndexOverflow {
        /// What overflowed ("node count", "adjacency entries", …).
        what: &'static str,
        /// The offending value.
        value: usize,
        /// The largest representable value.
        max: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range for graph with {node_count} nodes")
            }
            GraphError::SelfLoop(u) => {
                write!(f, "self-loop on node {u} not allowed in a simple graph")
            }
            GraphError::NegativeCycle => write!(f, "graph contains a negative-weight cycle"),
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
            GraphError::IndexOverflow { what, value, max } => {
                write!(f, "{what} {value} exceeds the compact index limit {max}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, node_count: 3 };
        assert_eq!(e.to_string(), "node 7 out of range for graph with 3 nodes");
        assert!(GraphError::NegativeCycle.to_string().contains("negative-weight"));
        assert!(GraphError::SelfLoop(2).to_string().contains("self-loop"));
        let e = GraphError::IndexOverflow {
            what: "node count",
            value: 1 << 33,
            max: u32::MAX as usize,
        };
        assert!(e.to_string().contains("node count"));
        assert!(e.to_string().contains("compact index limit"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
