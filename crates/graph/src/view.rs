//! Read-only graph views: the traits the algorithm kernels are generic over.
//!
//! Every read-only kernel in this crate ([`crate::traversal`],
//! [`crate::shortest_path`], [`crate::centrality`], [`crate::cores`]) takes
//! `impl GraphView` (or the directed/weighted counterpart) instead of a
//! concrete graph type, so the mutable adjacency-list representations
//! ([`Graph`], [`Digraph`], [`WeightedGraph`], [`WeightedDigraph`]) and the
//! frozen CSR representations ([`crate::CsrGraph`], [`crate::CsrDigraph`],
//! [`crate::WeightedCsrGraph`]) share one implementation of each algorithm.
//!
//! The contract is deliberately minimal — counts, degrees, and neighbor
//! *iteration* (no positional indexing, no slice access) — so any
//! representation that can enumerate a node's neighbors in a stable order
//! qualifies. Neighbor order is part of the observable behavior of several
//! kernels (DFS preorder, BFS parent choice); [`Graph::freeze`] preserves
//! adjacency order exactly, which is why the two representations produce
//! identical outputs, a property the CSR test-suite pins down.
//!
//! # Examples
//!
//! ```
//! use csn_graph::{Graph, GraphView};
//!
//! fn triangle_count<G: GraphView>(g: &G) -> usize {
//!     let mut count = 0;
//!     for u in g.nodes() {
//!         for v in g.neighbors(u) {
//!             if v > u {
//!                 count += g.neighbors(v).filter(|&w| w > v && g.has_edge(u, w)).count();
//!             }
//!         }
//!     }
//!     count
//! }
//!
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
//! assert_eq!(triangle_count(&g), 1);
//! assert_eq!(triangle_count(&g.freeze()), 1);
//! ```

use crate::graph::{Digraph, Graph, NodeId, WeightedDigraph, WeightedGraph};

/// Copied-slice neighbor iterator: the concrete iterator type behind every
/// built-in view (both adjacency lists and CSR store neighbors contiguously).
pub type SliceNeighbors<'a> = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

/// Copied-slice weighted neighbor iterator.
pub type SliceWeightedNeighbors<'a> = std::iter::Copied<std::slice::Iter<'a, (NodeId, f64)>>;

/// A read-only view of a simple undirected graph with dense node ids
/// `0..node_count()`.
///
/// Neighbor iterators must be double-ended (DFS pushes neighbors in reverse
/// to visit the first-stored one first) and must enumerate each node's
/// neighbors in a stable, representation-defined order.
pub trait GraphView {
    /// Iterator over the neighbors of one node.
    type Neighbors<'a>: DoubleEndedIterator<Item = NodeId>
    where
        Self: 'a;

    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Number of (undirected) edges.
    fn edge_count(&self) -> usize;

    /// Degree of `u`.
    fn degree(&self, u: NodeId) -> usize;

    /// Iterates over the neighbors of `u` in storage order.
    fn neighbors(&self, u: NodeId) -> Self::Neighbors<'_>;

    /// Iterator over node ids `0..node_count()`.
    fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.node_count()
    }

    /// Degree sequence (unsorted, indexed by node).
    fn degrees(&self) -> Vec<usize> {
        self.nodes().map(|u| self.degree(u)).collect()
    }

    /// Tests whether the edge `(u, v)` exists by scanning the smaller
    /// neighbor list.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).any(|w| w == b)
    }
}

/// A read-only view of a directed graph with dense node ids.
pub trait DigraphView {
    /// Iterator over the out-neighbors of one node.
    type OutNeighbors<'a>: DoubleEndedIterator<Item = NodeId>
    where
        Self: 'a;

    /// Iterator over the in-neighbors of one node.
    type InNeighbors<'a>: DoubleEndedIterator<Item = NodeId>
    where
        Self: 'a;

    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Number of arcs.
    fn arc_count(&self) -> usize;

    /// Out-degree of `u`.
    fn out_degree(&self, u: NodeId) -> usize;

    /// In-degree of `u`.
    fn in_degree(&self, u: NodeId) -> usize;

    /// Iterates over the out-neighbors of `u` in storage order.
    fn out_neighbors(&self, u: NodeId) -> Self::OutNeighbors<'_>;

    /// Iterates over the in-neighbors of `u` in storage order.
    fn in_neighbors(&self, u: NodeId) -> Self::InNeighbors<'_>;

    /// Iterator over node ids `0..node_count()`.
    fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.node_count()
    }
}

/// A read-only weighted out-adjacency view: each node exposes its weighted
/// out-neighbors `(v, w)`.
///
/// Undirected weighted graphs implement this by listing every incident edge
/// at both endpoints, so one generic Dijkstra serves [`WeightedGraph`],
/// [`WeightedDigraph`], and [`crate::WeightedCsrGraph`] alike.
pub trait WeightedGraphView {
    /// Iterator over the weighted out-neighbors of one node.
    type WeightedNeighbors<'a>: Iterator<Item = (NodeId, f64)>
    where
        Self: 'a;

    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Iterates over the weighted out-neighbors of `u` in storage order.
    fn weighted_neighbors(&self, u: NodeId) -> Self::WeightedNeighbors<'_>;

    /// Iterator over node ids `0..node_count()`.
    fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.node_count()
    }
}

impl GraphView for Graph {
    type Neighbors<'a> = SliceNeighbors<'a>;

    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }

    fn degree(&self, u: NodeId) -> usize {
        Graph::degree(self, u)
    }

    fn neighbors(&self, u: NodeId) -> SliceNeighbors<'_> {
        Graph::neighbors(self, u).iter().copied()
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        Graph::has_edge(self, u, v)
    }
}

impl DigraphView for Digraph {
    type OutNeighbors<'a> = SliceNeighbors<'a>;
    type InNeighbors<'a> = SliceNeighbors<'a>;

    fn node_count(&self) -> usize {
        Digraph::node_count(self)
    }

    fn arc_count(&self) -> usize {
        Digraph::arc_count(self)
    }

    fn out_degree(&self, u: NodeId) -> usize {
        Digraph::out_degree(self, u)
    }

    fn in_degree(&self, u: NodeId) -> usize {
        Digraph::in_degree(self, u)
    }

    fn out_neighbors(&self, u: NodeId) -> SliceNeighbors<'_> {
        Digraph::out_neighbors(self, u).iter().copied()
    }

    fn in_neighbors(&self, u: NodeId) -> SliceNeighbors<'_> {
        Digraph::in_neighbors(self, u).iter().copied()
    }
}

impl WeightedGraphView for WeightedGraph {
    type WeightedNeighbors<'a> = SliceWeightedNeighbors<'a>;

    fn node_count(&self) -> usize {
        WeightedGraph::node_count(self)
    }

    fn weighted_neighbors(&self, u: NodeId) -> SliceWeightedNeighbors<'_> {
        WeightedGraph::neighbors(self, u).iter().copied()
    }
}

impl WeightedGraphView for WeightedDigraph {
    type WeightedNeighbors<'a> = SliceWeightedNeighbors<'a>;

    fn node_count(&self) -> usize {
        WeightedDigraph::node_count(self)
    }

    fn weighted_neighbors(&self, u: NodeId) -> SliceWeightedNeighbors<'_> {
        WeightedDigraph::out_neighbors(self, u).iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generic helpers must see the same structure through either
    /// representation.
    fn degree_sum<G: GraphView>(g: &G) -> usize {
        g.nodes().map(|u| g.neighbors(u).count()).sum()
    }

    #[test]
    fn adjacency_graph_implements_view() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(degree_sum(&g), 6);
        assert_eq!(GraphView::degrees(&g), vec![1, 2, 2, 1]);
        assert!(GraphView::has_edge(&g, 2, 1));
        assert!(!GraphView::has_edge(&g, 0, 3));
    }

    #[test]
    fn digraph_view_separates_directions() {
        let d = Digraph::from_arcs(3, &[(0, 1), (2, 1)]).unwrap();
        assert_eq!(DigraphView::out_neighbors(&d, 0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(DigraphView::in_neighbors(&d, 1).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(DigraphView::out_degree(&d, 1), 0);
        assert_eq!(DigraphView::arc_count(&d), 2);
    }

    #[test]
    fn weighted_views_expose_out_adjacency() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 2.5);
        assert_eq!(g.weighted_neighbors(1).collect::<Vec<_>>(), vec![(0, 2.5)]);
        let mut d = WeightedDigraph::new(3);
        d.add_arc(0, 1, 2.5);
        assert_eq!(d.weighted_neighbors(0).collect::<Vec<_>>(), vec![(1, 2.5)]);
        assert_eq!(d.weighted_neighbors(1).count(), 0, "arcs are directional");
    }
}
