//! Reusable kernel workspaces: zero-allocation scratch arenas for the
//! single-source kernels.
//!
//! The hot loops of this crate — Brandes betweenness, closeness, BFS,
//! Dijkstra — are *per-source* computations that the serial kernels run `n`
//! times and the parallel kernels fan out over a pool. Allocating the
//! per-source state fresh each time (`vec![…; n]` several times per source,
//! plus a `Vec<Vec<NodeId>>` predecessor table for Brandes) is a large
//! constant-factor tax. The scratch structs here hoist that state out of the
//! loop:
//!
//! * [`BfsScratch`] — BFS frontier queue plus an epoch-stamped distance
//!   array shared by [`crate::traversal::bfs_distances_into`] and
//!   [`crate::centrality::closeness_one_into`].
//! * [`BrandesScratch`] — everything one Brandes source needs
//!   ([`crate::centrality::brandes_delta_into`]): epoch-stamped
//!   distance/path-count arrays, the dependency stack, and a **flat**
//!   predecessor store (one `Vec<NodeId>` of entries chained through
//!   per-node list heads) instead of the `Vec<Vec<NodeId>>` table, so a
//!   whole betweenness pass performs no per-source allocation at all.
//! * [`DijkstraScratch`] — the binary heap behind
//!   [`crate::shortest_path::dijkstra_into`].
//!
//! # The reuse contract
//!
//! A scratch may be reused freely across calls **and across different
//! graphs**: every `_into` kernel begins by calling `BfsScratch::begin` /
//! `BrandesScratch::begin`, which bumps a `u64` epoch counter and grows
//! the arrays to the current graph's node count (they never shrink). An
//! array slot is *valid* only when its stamp equals the current epoch, so a
//! source that touches `k` nodes pays `O(k)` cleanup — sparse frontiers skip
//! the `O(n)` clear entirely, and stale state from a previous (possibly
//! larger) graph can never leak into a result. The epoch is 64-bit and
//! monotonically increasing, so it never wraps in practice.
//!
//! Reuse is **observationally invisible**: the `_into` kernels produce
//! results bit-identical to the fresh-allocation wrappers
//! ([`crate::centrality::brandes_delta`], [`crate::traversal::bfs_distances`],
//! …), a property pinned down by the `scratch_props` property-test suite and
//! the `perf_smoke` gate in `csn-bench`.
//!
//! # Examples
//!
//! ```
//! use csn_graph::{generators, scratch::BfsScratch, traversal};
//!
//! let g1 = generators::path(5);
//! let g2 = generators::star(9); // different node count: scratch regrows
//! let mut scratch = BfsScratch::new();
//! let mut dist = Vec::new();
//! traversal::bfs_distances_into(&g1, 0, &mut scratch, &mut dist);
//! assert_eq!(dist, traversal::bfs_distances(&g1, 0));
//! traversal::bfs_distances_into(&g2, 3, &mut scratch, &mut dist);
//! assert_eq!(dist, traversal::bfs_distances(&g2, 3));
//! ```

use crate::graph::NodeId;
use std::collections::VecDeque;

/// Sentinel for "no predecessor-list entry" in [`BrandesScratch`].
pub(crate) const NO_PRED: usize = usize::MAX;

/// Reusable BFS workspace: an epoch-stamped distance array and the frontier
/// queue. See the [module docs](self) for the reuse contract.
#[derive(Debug, Default)]
pub struct BfsScratch {
    /// Current epoch; `stamp[v] == epoch` marks `dist[v]` as valid.
    pub(crate) epoch: u64,
    pub(crate) stamp: Vec<u64>,
    pub(crate) dist: Vec<usize>,
    pub(crate) queue: VecDeque<NodeId>,
}

impl BfsScratch {
    /// Creates an empty scratch; arrays grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new round over a graph with `n` nodes: bumps the epoch
    /// (invalidating all previous stamps in `O(1)`) and grows the arrays if
    /// this graph is larger than any seen before.
    pub(crate) fn begin(&mut self, n: usize) {
        self.epoch += 1;
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, 0);
        }
        self.queue.clear();
    }

    /// Marks `v` visited this round with distance `d`.
    #[inline]
    pub(crate) fn visit(&mut self, v: NodeId, d: usize) {
        self.stamp[v] = self.epoch;
        self.dist[v] = d;
    }

    /// Whether `v` was visited during the current round.
    #[inline]
    pub(crate) fn visited(&self, v: NodeId) -> bool {
        self.stamp[v] == self.epoch
    }
}

/// Reusable workspace for one Brandes source
/// ([`crate::centrality::brandes_delta_into`]).
///
/// Predecessor lists are stored flat: `pred_node[i]` is one predecessor
/// entry and `pred_next[i]` chains to the node's next entry, with the list
/// head per node in `pred_head` (epoch-stamped like `dist`/`sigma`). The
/// per-entry vectors are truncated (an `O(1)` length reset for `Copy`
/// elements) at the start of each round, so no per-source `Vec<Vec<_>>`
/// table is ever built.
///
/// Between calls, `delta` is all zeros and `stack` is empty — the `_into`
/// kernel restores both before returning, touching only the nodes the
/// source reached.
#[derive(Debug, Default)]
pub struct BrandesScratch {
    pub(crate) epoch: u64,
    pub(crate) stamp: Vec<u64>,
    pub(crate) dist: Vec<usize>,
    /// Shortest-path counts; valid when stamped.
    pub(crate) sigma: Vec<f64>,
    /// Dependency accumulator. Invariant: all zeros between calls.
    pub(crate) delta: Vec<f64>,
    /// Nodes reached this round, in BFS dequeue order. Empty between calls.
    pub(crate) stack: Vec<NodeId>,
    pub(crate) queue: VecDeque<NodeId>,
    /// Head of each node's predecessor list ([`NO_PRED`] = empty); stamped.
    pub(crate) pred_head: Vec<usize>,
    /// Flat predecessor entries (node of each entry).
    pub(crate) pred_node: Vec<NodeId>,
    /// Next-entry link per predecessor entry ([`NO_PRED`] terminates).
    pub(crate) pred_next: Vec<usize>,
}

impl BrandesScratch {
    /// Creates an empty scratch; arrays grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new round over a graph with `n` nodes (see
    /// [`BfsScratch::begin`]). `delta` grows zero-filled to preserve the
    /// all-zeros invariant.
    pub(crate) fn begin(&mut self, n: usize) {
        self.epoch += 1;
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, 0);
            self.sigma.resize(n, 0.0);
            self.delta.resize(n, 0.0);
            self.pred_head.resize(n, NO_PRED);
        }
        self.queue.clear();
        self.pred_node.clear();
        self.pred_next.clear();
    }

    /// Marks `v` discovered this round: stamps it, sets its distance, and
    /// resets its path count and predecessor list.
    #[inline]
    pub(crate) fn discover(&mut self, v: NodeId, d: usize) {
        self.stamp[v] = self.epoch;
        self.dist[v] = d;
        self.sigma[v] = 0.0;
        self.pred_head[v] = NO_PRED;
    }

    /// Whether `v` was discovered during the current round.
    #[inline]
    pub(crate) fn discovered(&self, v: NodeId) -> bool {
        self.stamp[v] == self.epoch
    }

    /// Appends `u` to `v`'s predecessor list (flat store).
    #[inline]
    pub(crate) fn push_pred(&mut self, v: NodeId, u: NodeId) {
        let slot = self.pred_node.len();
        self.pred_node.push(u);
        self.pred_next.push(self.pred_head[v]);
        self.pred_head[v] = slot;
    }

    /// Restores the between-calls invariant: zeroes `delta` at the touched
    /// nodes only (`O(reached)`, not `O(n)`) and clears the stack.
    pub(crate) fn reset_round(&mut self) {
        for &w in &self.stack {
            self.delta[w] = 0.0;
        }
        self.stack.clear();
    }
}

/// Reusable workspace for [`crate::shortest_path::dijkstra_into`]: the
/// priority queue, kept allocated across sources.
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    pub(crate) heap: std::collections::BinaryHeap<crate::shortest_path::HeapEntry>,
}

impl DijkstraScratch {
    /// Creates an empty scratch; the heap grows on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_invalidate_without_clearing() {
        let mut sc = BfsScratch::new();
        sc.begin(4);
        sc.visit(2, 7);
        assert!(sc.visited(2));
        assert!(!sc.visited(0));
        sc.begin(4);
        assert!(!sc.visited(2), "new epoch invalidates old stamps");
        assert_eq!(sc.dist[2], 7, "stale value remains but is unstamped");
    }

    #[test]
    fn scratch_grows_to_larger_graphs() {
        let mut sc = BrandesScratch::new();
        sc.begin(3);
        sc.discover(2, 0);
        sc.begin(10);
        assert!(!sc.discovered(2));
        sc.discover(9, 1);
        assert!(sc.discovered(9));
        assert!(sc.delta.iter().all(|&d| d == 0.0), "delta invariant holds after growth");
    }

    #[test]
    fn flat_pred_lists_chain_per_node() {
        let mut sc = BrandesScratch::new();
        sc.begin(4);
        for v in 0..4 {
            sc.discover(v, 0);
        }
        sc.push_pred(3, 0);
        sc.push_pred(3, 1);
        sc.push_pred(2, 1);
        let collect = |sc: &BrandesScratch, v: NodeId| {
            let mut out = Vec::new();
            let mut p = sc.pred_head[v];
            while p != NO_PRED {
                out.push(sc.pred_node[p]);
                p = sc.pred_next[p];
            }
            out
        };
        assert_eq!(collect(&sc, 3), vec![1, 0], "LIFO chaining");
        assert_eq!(collect(&sc, 2), vec![1]);
        assert_eq!(collect(&sc, 1), Vec::<NodeId>::new());
    }
}
