//! Compact-index CSR graphs for the million-node substrate tier.
//!
//! [`crate::CsrGraph`] stores offsets and targets as `usize` — 8 bytes per
//! adjacency entry on 64-bit targets. At n = 10⁶–10⁷ the adjacency array
//! dominates the working set of every traversal kernel, so halving its
//! element width halves the memory traffic of the hot loops. This module
//! provides two frozen representations behind the same [`GraphView`] trait
//! every generic kernel already accepts:
//!
//! * [`CompactCsrGraph`] — `u32` node ids and `u32` CSR offsets, neighbor
//!   order preserved exactly (like [`crate::CsrGraph`]), so order-sensitive
//!   kernels produce **bit-identical** output on it.
//! * [`DeltaCsrGraph`] — rows sorted ascending and stored as varint-encoded
//!   deltas (gap encoding), trading decode CPU for another ~2× size
//!   reduction on local/clustered graphs. Neighbor order is *normalized*
//!   (sorted), so only order-insensitive kernels (distances, components,
//!   cores, degrees) are guaranteed identical.
//!
//! Construction never builds an intermediate adjacency list: the
//! [`crate::stream::EdgeStream`] generators replay their (deterministic)
//! edge sequence twice — one pass to count degrees, one pass to fill rows —
//! so building a compact CSR for n = 10⁶ peaks at the size of the finished
//! arrays plus the generator's own state.
//!
//! All entry points validate that node ids and packed adjacency entries fit
//! in `u32` and return [`GraphError::IndexOverflow`] instead of wrapping.
//!
//! # Performance
//!
//! Per adjacency entry, [`CompactCsrGraph`] stores 4 bytes against
//! [`crate::CsrGraph`]'s 8; per node it stores a 4-byte offset against 8.
//! For a Barabási–Albert graph with m = 3 (6 directed entries per node)
//! that is 28 vs 56 heap bytes per node — the measured numbers live in the
//! committed `BENCH_scale.json` (see SCALING.md). [`DeltaCsrGraph`] encodes
//! most gaps in 1–2 bytes; its decode cost makes it a storage/streaming
//! format, with [`CompactCsrGraph`] as the compute representation.
//! [`CompactCsrGraph::heap_bytes`] and friends report the actual allocation
//! so benchmarks measure rather than estimate.
//!
//! # Examples
//!
//! ```
//! use csn_graph::{Graph, GraphView, compact::CompactCsrGraph};
//!
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
//! let c = CompactCsrGraph::from_graph(&g).unwrap();
//! assert_eq!(c.node_count(), 4);
//! assert_eq!(c.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
//! assert_eq!(c.thaw(), g);
//! ```

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::view::GraphView;

/// Largest value representable in the compact index space.
const U32_LIMIT: usize = u32::MAX as usize;

/// Checked narrowing for the compact representations: values that do not
/// fit in `u32` become a typed [`GraphError::IndexOverflow`], never a wrap.
pub(crate) fn to_u32(value: usize, what: &'static str) -> Result<u32, GraphError> {
    u32::try_from(value).map_err(|_| GraphError::IndexOverflow { what, value, max: U32_LIMIT })
}

/// Neighbor iterator over a `u32` target slice, widening to [`NodeId`].
pub type CompactNeighbors<'a> = std::iter::Map<std::slice::Iter<'a, u32>, fn(&u32) -> NodeId>;

/// How a streamed build arranges each node's row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOrder {
    /// Keep the emission order (matches [`Graph::add_edge`] order, so
    /// kernels are bit-identical to the adjacency-list build). Requires the
    /// stream to emit each undirected edge exactly once.
    Emission,
    /// Sort each row ascending and drop duplicates (for streams that may
    /// emit an edge more than once, e.g. independently chosen long-range
    /// contacts from both endpoints).
    SortedDedup,
}

/// A frozen undirected graph in compact CSR form: `u32` node ids, `u32`
/// offsets, neighbor order preserved.
///
/// Implements [`GraphView`], so every generic kernel runs on it unchanged —
/// and, because freezing preserves adjacency order, order-sensitive kernels
/// (DFS preorder, Brandes accumulation) produce bit-identical results to
/// the [`Graph`] it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactCsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    edge_count: usize,
}

impl CompactCsrGraph {
    /// Freezes `g` into compact CSR form, preserving neighbor order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::IndexOverflow`] if the node count or the
    /// number of packed adjacency entries (`2 · edge_count`) exceeds
    /// `u32::MAX`.
    pub fn from_graph(g: &Graph) -> Result<Self, GraphError> {
        let n = g.node_count();
        to_u32(n, "node count")?;
        let entries = 2 * g.edge_count();
        to_u32(entries, "adjacency entries")?;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut targets = Vec::with_capacity(entries);
        for u in g.nodes() {
            for &v in Graph::neighbors(g, u) {
                targets.push(v as u32);
            }
            offsets.push(targets.len() as u32);
        }
        Ok(CompactCsrGraph { offsets, targets, edge_count: g.edge_count() })
    }

    /// Builds a compact CSR directly from a replayable edge stream without
    /// any intermediate adjacency structure. The stream is replayed twice
    /// (degree-count pass, fill pass) and **must** emit the identical edge
    /// sequence both times — the deterministic seeded generators in
    /// [`crate::stream`] satisfy this by construction.
    ///
    /// With [`RowOrder::Emission`] each row keeps the order in which its
    /// entries were emitted (matching what [`Graph::add_edge`] would have
    /// stored); duplicate edges are **not** detected and would corrupt the
    /// edge count. With [`RowOrder::SortedDedup`] rows are sorted and
    /// duplicates removed, so streams with rare double emissions stay
    /// simple.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::IndexOverflow`] if `n` or the emitted entry
    /// count exceeds `u32::MAX`, and [`GraphError::NodeOutOfRange`] /
    /// [`GraphError::SelfLoop`] for invalid emissions.
    pub fn from_edge_stream(
        n: usize,
        order: RowOrder,
        mut replay: impl FnMut(&mut dyn FnMut(NodeId, NodeId)),
    ) -> Result<Self, GraphError> {
        to_u32(n, "node count")?;
        // Pass 1: count degrees (duplicates included; SortedDedup compacts
        // after the fill pass).
        let mut degree = vec![0u32; n];
        let mut emitted = 0usize;
        let mut bad: Option<GraphError> = None;
        replay(&mut |u, v| {
            if bad.is_some() {
                return;
            }
            if u >= n || v >= n {
                bad = Some(GraphError::NodeOutOfRange { node: u.max(v), node_count: n });
                return;
            }
            if u == v {
                bad = Some(GraphError::SelfLoop(u));
                return;
            }
            degree[u] += 1;
            degree[v] += 1;
            emitted += 1;
        });
        if let Some(e) = bad {
            return Err(e);
        }
        to_u32(2 * emitted, "adjacency entries")?;

        // Exclusive prefix sums -> row start cursors.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0u32);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; acc as usize];

        // Pass 2: fill. The stream contract guarantees the same sequence,
        // so the cursors land exactly on the counted slots.
        let mut filled = 0usize;
        replay(&mut |u, v| {
            targets[cursor[u] as usize] = v as u32;
            cursor[u] += 1;
            targets[cursor[v] as usize] = u as u32;
            cursor[v] += 1;
            filled += 1;
        });
        assert_eq!(filled, emitted, "edge stream replay emitted a different sequence length");

        let mut g = CompactCsrGraph { offsets, targets, edge_count: emitted };
        if order == RowOrder::SortedDedup {
            g.sort_dedup_rows();
        }
        Ok(g)
    }

    /// Sorts every row ascending, removes duplicate entries, and re-packs
    /// the arrays. A duplicate undirected edge appears in both endpoint
    /// rows, so per-row dedup keeps the representation consistent.
    fn sort_dedup_rows(&mut self) {
        let n = self.node_count();
        let mut write = 0usize;
        let mut read_start = 0usize;
        for u in 0..n {
            let read_end = self.offsets[u + 1] as usize;
            self.targets[read_start..read_end].sort_unstable();
            let row_start = write;
            let mut last = u32::MAX;
            for i in read_start..read_end {
                let t = self.targets[i];
                if i == read_start || t != last {
                    self.targets[write] = t;
                    write += 1;
                }
                last = t;
            }
            self.offsets[u] = row_start as u32;
            read_start = read_end;
        }
        self.offsets[n] = write as u32;
        self.targets.truncate(write);
        debug_assert_eq!(write % 2, 0, "rows must pair up");
        self.edge_count = write / 2;
    }

    /// Neighbors of `u` as a slice of the packed `u32` target array.
    pub fn neighbor_slice(&self, u: NodeId) -> &[u32] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Thaws back into a mutable adjacency-list [`Graph`] with the same
    /// edge set (and, for [`RowOrder::Emission`] builds and
    /// [`Self::from_graph`], the same neighbor order).
    pub fn thaw(&self) -> Graph {
        let mut g = Graph::new(self.node_count());
        for u in self.nodes() {
            for &v in self.neighbor_slice(u) {
                if u < v as usize {
                    g.add_edge(u, v as usize);
                }
            }
        }
        g
    }

    /// Heap bytes held by the CSR arrays (capacity, not just length) — the
    /// number `BENCH_scale.json` reports as `compact_csr` bytes per node.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.targets.capacity() * std::mem::size_of::<u32>()
    }
}

impl GraphView for CompactCsrGraph {
    type Neighbors<'a> = CompactNeighbors<'a>;

    fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    fn neighbors(&self, u: NodeId) -> CompactNeighbors<'_> {
        self.neighbor_slice(u).iter().map(|&v| v as NodeId)
    }
}

/// Appends `value` as a LEB128 varint (7 bits per byte, high bit = "more").
fn push_varint(bytes: &mut Vec<u8>, mut value: u32) {
    while value >= 0x80 {
        bytes.push((value as u8 & 0x7f) | 0x80);
        value >>= 7;
    }
    bytes.push(value as u8);
}

/// Decodes one LEB128 varint starting at `pos`; returns `(value, next_pos)`.
fn read_varint(bytes: &[u8], mut pos: usize) -> (u32, usize) {
    let mut value = 0u32;
    let mut shift = 0u32;
    loop {
        let b = bytes[pos];
        pos += 1;
        value |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return (value, pos);
        }
        shift += 7;
    }
}

/// A frozen undirected graph with delta-compressed rows: each row is sorted
/// ascending and stored as varints — the first entry absolute, the rest as
/// gaps to the previous entry.
///
/// Neighbor order is normalized (sorted), so only order-insensitive kernels
/// (BFS distances, components, cores, degrees, counts) are guaranteed to
/// match the uncompressed representations; order-sensitive ones (DFS
/// preorder) may differ legally. Forward iteration decodes in place with no
/// allocation; reverse iteration ([`DoubleEndedIterator::next_back`], used
/// by DFS) decodes the row's remainder into a buffer on first use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaCsrGraph {
    /// Byte offset of each row in `bytes`, plus the end sentinel.
    byte_offsets: Vec<u32>,
    /// Per-node degree (varint rows cannot be sized from offsets alone).
    degrees: Vec<u32>,
    bytes: Vec<u8>,
    edge_count: usize,
}

impl DeltaCsrGraph {
    /// Compresses a [`CompactCsrGraph`] (rows are sorted in the process).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::IndexOverflow`] if the encoded byte stream
    /// exceeds the `u32` offset space.
    pub fn from_compact(c: &CompactCsrGraph) -> Result<Self, GraphError> {
        let n = c.node_count();
        let mut byte_offsets = Vec::with_capacity(n + 1);
        let mut degrees = Vec::with_capacity(n);
        let mut bytes = Vec::new();
        let mut row = Vec::new();
        byte_offsets.push(0u32);
        for u in 0..n {
            row.clear();
            row.extend_from_slice(c.neighbor_slice(u));
            row.sort_unstable();
            let mut prev = 0u32;
            for (i, &v) in row.iter().enumerate() {
                push_varint(&mut bytes, if i == 0 { v } else { v - prev });
                prev = v;
            }
            byte_offsets.push(to_u32(bytes.len(), "compressed bytes")?);
            degrees.push(row.len() as u32);
        }
        Ok(DeltaCsrGraph { byte_offsets, degrees, bytes, edge_count: c.edge_count() })
    }

    /// Heap bytes held by the compressed arrays (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        self.byte_offsets.capacity() * std::mem::size_of::<u32>()
            + self.degrees.capacity() * std::mem::size_of::<u32>()
            + self.bytes.capacity()
    }
}

/// Decoding neighbor iterator for one [`DeltaCsrGraph`] row.
pub struct DeltaNeighbors<'a> {
    bytes: &'a [u8],
    pos: usize,
    prev: u32,
    first: bool,
    /// Items not yet yielded (from either end).
    remaining: usize,
    /// Once `next_back` is called, the undecoded remainder is materialized
    /// here as `(values, front_index)`: the live window is
    /// `values[front .. front + remaining]`.
    buf: Option<(Vec<u32>, usize)>,
}

impl DeltaNeighbors<'_> {
    /// Decodes the not-yet-consumed remainder into a buffer (varints cannot
    /// be read backwards), after which both ends serve from it.
    fn materialize(&mut self) {
        let mut values = Vec::with_capacity(self.remaining);
        let (mut pos, mut prev, mut first) = (self.pos, self.prev, self.first);
        for _ in 0..self.remaining {
            let (delta, next) = read_varint(self.bytes, pos);
            pos = next;
            prev = if first { delta } else { prev + delta };
            first = false;
            values.push(prev);
        }
        self.buf = Some((values, 0));
    }
}

impl Iterator for DeltaNeighbors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.remaining == 0 {
            return None;
        }
        if let Some((values, front)) = &mut self.buf {
            let v = values[*front];
            *front += 1;
            self.remaining -= 1;
            return Some(v as NodeId);
        }
        let (delta, pos) = read_varint(self.bytes, self.pos);
        self.pos = pos;
        self.prev = if self.first { delta } else { self.prev + delta };
        self.first = false;
        self.remaining -= 1;
        Some(self.prev as NodeId)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl DoubleEndedIterator for DeltaNeighbors<'_> {
    fn next_back(&mut self) -> Option<NodeId> {
        if self.remaining == 0 {
            return None;
        }
        if self.buf.is_none() {
            self.materialize();
        }
        let (values, front) = self.buf.as_ref().expect("buffer just filled");
        self.remaining -= 1;
        Some(values[front + self.remaining] as NodeId)
    }
}

impl ExactSizeIterator for DeltaNeighbors<'_> {}

impl GraphView for DeltaCsrGraph {
    type Neighbors<'a> = DeltaNeighbors<'a>;

    fn node_count(&self) -> usize {
        self.degrees.len()
    }

    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn degree(&self, u: NodeId) -> usize {
        self.degrees[u] as usize
    }

    fn neighbors(&self, u: NodeId) -> DeltaNeighbors<'_> {
        DeltaNeighbors {
            bytes: &self.bytes[..self.byte_offsets[u + 1] as usize],
            pos: self.byte_offsets[u] as usize,
            prev: 0,
            first: true,
            remaining: self.degrees[u] as usize,
            buf: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal;

    #[test]
    fn compact_preserves_neighbor_order_and_round_trips() {
        let mut g = Graph::new(4);
        g.add_edge(0, 3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let c = CompactCsrGraph::from_graph(&g).unwrap();
        assert_eq!(c.neighbor_slice(0), &[3, 1, 2]);
        assert_eq!(c.thaw(), g);
        assert_eq!(c.degree(0), 3);
        assert_eq!(GraphView::edge_count(&c), 3);
    }

    #[test]
    fn compact_kernels_bitwise_match_graph() {
        let g = generators::erdos_renyi(60, 0.1, 5).unwrap();
        let c = CompactCsrGraph::from_graph(&g).unwrap();
        assert_eq!(
            crate::centrality::betweenness_centrality(&g),
            crate::centrality::betweenness_centrality(&c)
        );
        assert_eq!(traversal::dfs_preorder(&g, 0), traversal::dfs_preorder(&c, 0));
        assert_eq!(traversal::bfs_distances(&g, 0), traversal::bfs_distances(&c, 0));
    }

    #[test]
    fn from_edge_stream_matches_from_graph() {
        let g = generators::barabasi_albert(200, 3, 9).unwrap();
        let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
        // Emission in edges() order differs from add_edge order, but the
        // edge *set* (and hence thaw equality) must hold.
        let c = CompactCsrGraph::from_edge_stream(200, RowOrder::Emission, |emit| {
            for &(u, v) in &edges {
                emit(u, v);
            }
        })
        .unwrap();
        assert_eq!(c.thaw(), g);
        assert_eq!(GraphView::edge_count(&c), g.edge_count());
    }

    #[test]
    fn sorted_dedup_collapses_duplicate_emissions() {
        let c = CompactCsrGraph::from_edge_stream(4, RowOrder::SortedDedup, |emit| {
            emit(0, 1);
            emit(2, 1);
            emit(1, 0); // duplicate of (0, 1), reversed
            emit(0, 3);
        })
        .unwrap();
        assert_eq!(GraphView::edge_count(&c), 3);
        assert_eq!(c.neighbor_slice(1), &[0, 2]);
        assert_eq!(c.neighbor_slice(0), &[1, 3]);
        assert_eq!(c.thaw(), Graph::from_edges(4, &[(0, 1), (1, 2), (0, 3)]).unwrap());
    }

    #[test]
    fn stream_rejects_bad_emissions() {
        let r = CompactCsrGraph::from_edge_stream(3, RowOrder::Emission, |emit| emit(0, 7));
        assert!(matches!(r, Err(GraphError::NodeOutOfRange { node: 7, node_count: 3 })));
        let r = CompactCsrGraph::from_edge_stream(3, RowOrder::Emission, |emit| emit(1, 1));
        assert!(matches!(r, Err(GraphError::SelfLoop(1))));
    }

    #[test]
    fn delta_round_trips_edge_set_and_kernels() {
        let g = generators::watts_strogatz(80, 3, 0.2, 4).unwrap();
        let c = CompactCsrGraph::from_graph(&g).unwrap();
        let d = DeltaCsrGraph::from_compact(&c).unwrap();
        assert_eq!(d.node_count(), 80);
        assert_eq!(GraphView::edge_count(&d), g.edge_count());
        assert_eq!(GraphView::degrees(&d), GraphView::degrees(&g));
        // Order-insensitive kernels agree exactly.
        assert_eq!(traversal::bfs_distances(&d, 0), traversal::bfs_distances(&g, 0));
        assert_eq!(traversal::connected_components(&d), traversal::connected_components(&g));
        assert_eq!(crate::cores::core_numbers(&d), crate::cores::core_numbers(&g));
        // Rows decode sorted.
        for u in d.nodes() {
            let row: Vec<NodeId> = d.neighbors(u).collect();
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {u} not sorted: {row:?}");
        }
    }

    #[test]
    fn delta_reverse_iteration_matches_forward() {
        let g = generators::barabasi_albert(60, 2, 8).unwrap();
        let d = DeltaCsrGraph::from_compact(&CompactCsrGraph::from_graph(&g).unwrap()).unwrap();
        for u in d.nodes() {
            let fwd: Vec<NodeId> = d.neighbors(u).collect();
            let mut bwd: Vec<NodeId> = d.neighbors(u).rev().collect();
            bwd.reverse();
            assert_eq!(fwd, bwd, "node {u}");
            // Mixed consumption: alternate front and back.
            let mut it = d.neighbors(u);
            let mut front = Vec::new();
            let mut back = Vec::new();
            while let Some(v) = it.next() {
                front.push(v);
                if let Some(v) = it.next_back() {
                    back.push(v);
                } else {
                    break;
                }
            }
            back.reverse();
            front.extend(back);
            assert_eq!(front, fwd, "mixed consumption, node {u}");
        }
    }

    #[test]
    fn delta_compresses_local_rows() {
        // A grid has strongly local neighborhoods: gaps of 1 and `cols`.
        let g = generators::grid(40, 40);
        let c = CompactCsrGraph::from_graph(&g).unwrap();
        let d = DeltaCsrGraph::from_compact(&c).unwrap();
        assert!(
            d.heap_bytes() < c.heap_bytes(),
            "delta {} >= compact {}",
            d.heap_bytes(),
            c.heap_bytes()
        );
    }

    #[test]
    fn varint_round_trips() {
        let mut bytes = Vec::new();
        let values = [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX];
        for &v in &values {
            push_varint(&mut bytes, v);
        }
        let mut pos = 0;
        for &v in &values {
            let (got, next) = read_varint(&bytes, pos);
            assert_eq!(got, v);
            pos = next;
        }
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn to_u32_errors_instead_of_wrapping() {
        assert_eq!(to_u32(42, "x").unwrap(), 42);
        assert_eq!(to_u32(U32_LIMIT, "x").unwrap(), u32::MAX);
        let err = to_u32(U32_LIMIT + 1, "node count").unwrap_err();
        assert_eq!(
            err,
            GraphError::IndexOverflow { what: "node count", value: U32_LIMIT + 1, max: U32_LIMIT }
        );
    }
}
