//! # csn-graph — static-graph substrate
//!
//! Core graph types, generators, and classical algorithms used throughout the
//! `structura` workspace, a reproduction of *"Uncovering the Useful Structures
//! of Complex Networks in Socially-Rich and Dynamic Environments"* (Jie Wu,
//! ICDCS 2017).
//!
//! The paper treats the traditional graph `G = (V, E)` as the baseline model
//! for complex networks (§II). This crate provides that substrate from
//! scratch:
//!
//! * [`Graph`] — simple undirected graphs; [`Digraph`] — directed graphs.
//! * [`generators`] — Erdős–Rényi, Barabási–Albert, Watts–Strogatz,
//!   Kleinberg grids, random geometric (unit-disk), hypercubes, generalized
//!   hypercubes, and a Gnutella-like peer-to-peer topology.
//! * [`traversal`] — BFS/DFS, connected components, Tarjan SCC.
//! * [`shortest_path`] — Dijkstra, Bellman–Ford, BFS distances.
//! * [`centrality`] — degree, closeness, betweenness (Brandes),
//!   eigenvector/PageRank, HITS (§III of the paper surveys these).
//! * [`powerlaw`] — discrete power-law MLE fitting used by the nested
//!   scale-free analysis (Fig. 3 / §III-B).
//! * [`cores`] — k-core decomposition.
//!
//! # Examples
//!
//! ```
//! use csn_graph::Graph;
//!
//! let mut g = Graph::new(4);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! g.add_edge(2, 3);
//! assert_eq!(g.edge_count(), 3);
//! assert!(csn_graph::traversal::is_connected(&g));
//! ```

pub mod centrality;
pub mod cores;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod mst;
pub mod powerlaw;
pub mod shortest_path;
pub mod spanner;
pub mod traversal;

pub use error::GraphError;
pub use graph::{Digraph, Graph, NodeId, WeightedDigraph, WeightedGraph};
