//! # csn-graph — static-graph substrate
//!
//! Core graph types, generators, and classical algorithms used throughout the
//! `structura` workspace, a reproduction of *"Uncovering the Useful Structures
//! of Complex Networks in Socially-Rich and Dynamic Environments"* (Jie Wu,
//! ICDCS 2017).
//!
//! The paper treats the traditional graph `G = (V, E)` as the baseline model
//! for complex networks (§II). This crate provides that substrate from
//! scratch:
//!
//! * [`Graph`] — simple undirected graphs; [`Digraph`] — directed graphs.
//! * [`view`] — the [`GraphView`] / [`DigraphView`] / [`WeightedGraphView`]
//!   traits every read-only kernel is generic over.
//! * [`csr`] — frozen CSR representations ([`CsrGraph`], [`CsrDigraph`],
//!   [`WeightedCsrGraph`]) built with [`Graph::freeze`] and friends;
//!   cache-friendly for traversal-heavy analysis, convertible back with
//!   [`CsrGraph::thaw`].
//! * [`compact`] — the million-node tier's frozen forms: [`CompactCsrGraph`]
//!   (`u32` ids/offsets, half the memory traffic of [`CsrGraph`]) and
//!   [`DeltaCsrGraph`] (varint gap encoding), both behind [`GraphView`].
//! * [`stream`] — streaming generators ([`stream::BaStream`],
//!   [`stream::GeometricStream`], [`stream::KleinbergStream`],
//!   [`stream::GnutellaStream`]) that replay a seeded edge sequence straight
//!   into [`CompactCsrGraph::from_edge_stream`] — no intermediate adjacency.
//! * [`approx`] — sampled betweenness/closeness
//!   ([`approx::betweenness_sampled`], [`approx::closeness_sampled`]) with
//!   Hoeffding-style error bounds; at full sampling they degenerate
//!   bit-identically to the exact kernels.
//! * [`parallel`] — source-parallel kernels ([`parallel::betweenness_par`],
//!   [`parallel::closeness_par`], [`parallel::all_pairs_bfs_par`]) whose
//!   results are bit-identical to the serial functions.
//! * [`generators`] — Erdős–Rényi, Barabási–Albert, Watts–Strogatz,
//!   Kleinberg grids, random geometric (unit-disk), hypercubes, generalized
//!   hypercubes, and a Gnutella-like peer-to-peer topology.
//! * [`traversal`] — BFS/DFS, connected components, Tarjan SCC.
//! * [`shortest_path`] — Dijkstra, Bellman–Ford, BFS distances.
//! * [`centrality`] — degree, closeness, betweenness (Brandes),
//!   eigenvector/PageRank, HITS (§III of the paper surveys these).
//! * [`powerlaw`] — discrete power-law MLE fitting used by the nested
//!   scale-free analysis (Fig. 3 / §III-B).
//! * [`cores`] — k-core decomposition.
//! * [`scratch`] — reusable kernel workspaces ([`scratch::BrandesScratch`],
//!   [`scratch::BfsScratch`], [`scratch::DijkstraScratch`]) behind the
//!   zero-allocation `_into` kernel variants.
//!
//! # Performance
//!
//! The single-source kernels come in two forms: the classic signatures
//! ([`centrality::brandes_delta`], [`traversal::bfs_distances`],
//! [`shortest_path::dijkstra`], …) that allocate per call, and `_into`
//! variants ([`centrality::brandes_delta_into`],
//! [`traversal::bfs_distances_into`], [`shortest_path::dijkstra_into`])
//! that run over a caller-owned [`scratch`] arena and a caller-owned output
//! buffer. The classic forms are now thin wrappers over the `_into` forms,
//! so both paths execute the same code and produce **bit-identical**
//! results.
//!
//! The reuse contract (details in [`scratch`]): a scratch never needs
//! explicit clearing or resizing — each `_into` call bumps a 64-bit epoch
//! and regrows the arrays on demand, so the same scratch can serve
//! different graphs back to back, visited/dist state is invalidated in
//! `O(1)`, and a source that reaches `k` nodes does `O(k)` cleanup rather
//! than `O(n)`. The all-sources drivers ([`centrality::betweenness_centrality`],
//! [`centrality::closeness_centrality`], [`traversal::all_pairs_bfs`],
//! [`shortest_path::all_pairs_dijkstra`]) reuse one scratch internally, and
//! the [`parallel`] kernels hold one scratch per pool worker — `O(jobs · n)`
//! working memory per call instead of `O(sources · n)` allocations.
//!
//! # Examples
//!
//! Mutable graphs freeze into an immutable CSR form that every kernel
//! accepts interchangeably:
//!
//! ```
//! use csn_graph::{Graph, GraphView};
//!
//! let mut g = Graph::new(4);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! g.add_edge(2, 3);
//! assert_eq!(g.edge_count(), 3);
//! assert!(csn_graph::traversal::is_connected(&g));
//!
//! let csr = g.freeze();
//! assert!(csn_graph::traversal::is_connected(&csr));
//! assert_eq!(
//!     csn_graph::centrality::betweenness_centrality(&g),
//!     csn_graph::centrality::betweenness_centrality(&csr),
//! );
//! assert_eq!(csr.thaw(), g);
//! ```

pub mod approx;
pub mod centrality;
pub mod compact;
pub mod cores;
pub mod csr;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod landmark;
pub mod mst;
pub mod parallel;
pub mod powerlaw;
pub mod scratch;
pub mod shortest_path;
pub mod spanner;
pub mod stream;
pub mod traversal;
pub mod view;

pub use compact::{CompactCsrGraph, DeltaCsrGraph};
pub use csr::{CsrDigraph, CsrGraph, WeightedCsrGraph};
pub use error::GraphError;
pub use graph::{Digraph, Graph, NodeId, WeightedDigraph, WeightedGraph};
pub use landmark::LandmarkIndex;
pub use scratch::{BfsScratch, BrandesScratch, DijkstraScratch};
pub use stream::EdgeStream;
pub use view::{DigraphView, GraphView, WeightedGraphView};
