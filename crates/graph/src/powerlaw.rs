//! Discrete power-law fitting for degree distributions.
//!
//! The paper's layering section (§III-B, Fig. 3) defines *scale-free* (SF) as
//! "node degree distribution follows the power-law distribution" and *nested
//! scale-free* (NSF) in terms of the standard deviation of power-law
//! exponents across peeled subgraphs. This module provides the exponent
//! estimator those definitions need: the exact discrete maximum-likelihood
//! estimator of Clauset–Shalizi–Newman (Hurwitz-zeta likelihood, optimized by
//! golden-section search), a Kolmogorov–Smirnov goodness-of-fit distance, and
//! an exact discrete power-law sampler for synthetic workloads.

use serde::{Deserialize, Serialize};

/// Result of fitting `P(k) ∝ k^(-alpha)` for `k >= k_min` to a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Estimated exponent `alpha`.
    pub alpha: f64,
    /// Lower cutoff used for the fit.
    pub k_min: usize,
    /// Number of samples at or above `k_min`.
    pub tail_len: usize,
    /// Kolmogorov–Smirnov distance between the empirical tail CCDF and the fit.
    pub ks: f64,
}

/// Hurwitz zeta `ζ(alpha, q) = Σ_{k>=q} k^(-alpha)` by direct summation of
/// the head plus an Euler–Maclaurin tail correction.
///
/// Accurate to ~1e-10 for `alpha > 1.05`.
pub fn hurwitz_zeta(alpha: f64, q: usize) -> f64 {
    assert!(alpha > 1.0, "zeta diverges for alpha <= 1");
    assert!(q >= 1, "q must be positive");
    const HEAD: usize = 2000;
    let n = q + HEAD;
    let mut sum = 0.0;
    for k in q..n {
        sum += (k as f64).powf(-alpha);
    }
    // Euler–Maclaurin: ∫_N^∞ x^-a dx + f(N)/2 - a·N^(-a-1)/12
    let nf = n as f64;
    sum += nf.powf(1.0 - alpha) / (alpha - 1.0) + 0.5 * nf.powf(-alpha)
        - alpha * nf.powf(-alpha - 1.0) / 12.0;
    sum
}

/// Fits a discrete power law to `values` with a fixed `k_min` using the exact
/// discrete MLE: maximize `-n·ln ζ(α, k_min) - α·Σ ln x_i` over `α`.
///
/// Returns `None` if fewer than 2 samples reach `k_min`, `k_min < 1`, or all
/// tail samples equal `k_min` (the likelihood then has no interior maximum).
///
/// # Examples
///
/// ```
/// use csn_graph::powerlaw::{fit_with_kmin, sample_power_law};
///
/// let sample = sample_power_law(5000, 2.5, 1, 42);
/// let fit = fit_with_kmin(&sample, 1).unwrap();
/// assert!((fit.alpha - 2.5).abs() < 0.15);
/// ```
pub fn fit_with_kmin(values: &[usize], k_min: usize) -> Option<PowerLawFit> {
    if k_min == 0 {
        return None;
    }
    let tail: Vec<usize> = values.iter().copied().filter(|&v| v >= k_min).collect();
    if tail.len() < 2 || tail.iter().all(|&v| v == k_min) {
        return None;
    }
    let mean_log: f64 = tail.iter().map(|&v| (v as f64).ln()).sum::<f64>() / tail.len() as f64;
    // Negative mean log-likelihood per sample; unimodal in alpha.
    let nll = |alpha: f64| hurwitz_zeta(alpha, k_min).ln() + alpha * mean_log;
    let alpha = golden_section_min(nll, 1.05, 12.0, 1e-7);
    let ks = ks_distance(&tail, alpha, k_min);
    Some(PowerLawFit { alpha, k_min, tail_len: tail.len(), ks })
}

/// Golden-section search for the minimum of a unimodal function on `[a, b]`.
fn golden_section_min<F: Fn(f64) -> f64>(f: F, mut a: f64, mut b: f64, tol: f64) -> f64 {
    let inv_phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    (a + b) / 2.0
}

/// Fits a power law scanning `k_min` over the distinct sample values and
/// picking the cutoff minimizing the KS distance (Clauset et al. procedure).
///
/// `min_tail` guards against degenerate tiny tails (values of ~50 are
/// typical). Returns `None` if no cutoff yields an admissible fit.
pub fn fit(values: &[usize], min_tail: usize) -> Option<PowerLawFit> {
    let mut candidates: Vec<usize> = values.iter().copied().filter(|&v| v >= 1).collect();
    candidates.sort_unstable();
    candidates.dedup();
    let mut best: Option<PowerLawFit> = None;
    for &k_min in &candidates {
        let Some(f) = fit_with_kmin(values, k_min) else { continue };
        if f.tail_len < min_tail {
            break; // tails only shrink as k_min grows
        }
        if best.is_none_or(|b| f.ks < b.ks) {
            best = Some(f);
        }
    }
    best
}

/// KS distance between the empirical CCDF of `tail` (all ≥ `k_min`) and the
/// exact discrete power-law CCDF `P(X >= k) = ζ(α, k)/ζ(α, k_min)`.
fn ks_distance(tail: &[usize], alpha: f64, k_min: usize) -> f64 {
    let mut sorted = tail.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let z0 = hurwitz_zeta(alpha, k_min);
    let mut max_d: f64 = 0.0;
    let mut i = 0usize;
    // Cache ζ(α, k) incrementally: ζ(α,k+1) = ζ(α,k) - k^-α.
    let mut zeta_k = z0;
    let mut cur_k = k_min;
    while i < sorted.len() {
        let k = sorted[i];
        while cur_k < k {
            zeta_k -= (cur_k as f64).powf(-alpha);
            cur_k += 1;
        }
        let mut j = i;
        while j < sorted.len() && sorted[j] == k {
            j += 1;
        }
        let emp_ccdf_at_k = (sorted.len() - i) as f64 / n; // P_emp(X >= k)
        let model = (zeta_k / z0).max(0.0);
        max_d = max_d.max((emp_ccdf_at_k - model).abs());
        i = j;
    }
    max_d
}

/// Draws `n` samples from the exact discrete power law
/// `P(k) = k^(-alpha) / ζ(alpha, k_min)` by inverse-CDF walking.
///
/// # Panics
///
/// Panics if `alpha <= 1` or `k_min == 0`.
pub fn sample_power_law(n: usize, alpha: f64, k_min: usize, seed: u64) -> Vec<usize> {
    use rand::{Rng, SeedableRng};
    assert!(alpha > 1.0 && k_min >= 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let z0 = hurwitz_zeta(alpha, k_min);
    // Precompute the CDF table for the overwhelming bulk of the mass; walk
    // the tail analytically for the rare huge draws.
    const TABLE: usize = 100_000;
    let mut cdf = Vec::with_capacity(TABLE);
    let mut acc = 0.0;
    for k in k_min..(k_min + TABLE) {
        acc += (k as f64).powf(-alpha) / z0;
        cdf.push(acc);
    }
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>();
            if u < *cdf.last().expect("nonempty table") {
                k_min + cdf.partition_point(|&c| c < u)
            } else {
                // Tail: continuous inversion of the remaining mass.
                let k_t = (k_min + TABLE) as f64;
                let rem = 1.0 - cdf.last().unwrap();
                let frac = (u - cdf.last().unwrap()) / rem;
                (k_t * (1.0 - frac).powf(-1.0 / (alpha - 1.0))) as usize
            }
        })
        .collect()
}

/// Sample mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hurwitz_zeta_matches_riemann() {
        // ζ(2) = π²/6.
        let z2 = hurwitz_zeta(2.0, 1);
        assert!((z2 - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-8, "{z2}");
        // ζ(α, q) = ζ(α, 1) - Σ_{k<q} k^-α.
        let lhs = hurwitz_zeta(2.5, 3);
        let rhs = hurwitz_zeta(2.5, 1) - 1.0 - 2.0f64.powf(-2.5);
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn recovers_exponent_of_synthetic_sample() {
        for &alpha in &[2.0f64, 2.5, 3.0] {
            let sample = sample_power_law(50_000, alpha, 1, 42);
            let fit = fit_with_kmin(&sample, 1).expect("fit");
            assert!((fit.alpha - alpha).abs() < 0.05, "alpha {alpha}: estimated {}", fit.alpha);
        }
    }

    #[test]
    fn recovers_exponent_with_larger_kmin() {
        let sample = sample_power_law(30_000, 2.2, 4, 11);
        let fit = fit_with_kmin(&sample, 4).expect("fit");
        assert!((fit.alpha - 2.2).abs() < 0.06, "estimated {}", fit.alpha);
    }

    #[test]
    fn ks_small_for_true_power_law_large_for_uniform() {
        let pl = sample_power_law(20_000, 2.5, 1, 7);
        let fit_pl = fit_with_kmin(&pl, 1).unwrap();
        assert!(fit_pl.ks < 0.02, "power-law KS = {}", fit_pl.ks);

        let uniform: Vec<usize> = (0..20_000).map(|i| 1 + (i % 100)).collect();
        let fit_u = fit_with_kmin(&uniform, 1).unwrap();
        assert!(fit_u.ks > 0.1, "uniform KS = {}", fit_u.ks);
    }

    #[test]
    fn scanning_kmin_improves_ks_on_shifted_data() {
        // Power law only above k = 5; below that, uniform noise.
        let mut sample = sample_power_law(10_000, 2.5, 5, 3);
        sample.extend((0..5_000).map(|i| 1 + (i % 4)));
        let scanned = fit(&sample, 50).expect("fit");
        let fixed = fit_with_kmin(&sample, 1).expect("fit");
        assert!(scanned.ks <= fixed.ks);
        assert!(scanned.k_min >= 2, "cutoff should move up, got {}", scanned.k_min);
        assert!((scanned.alpha - 2.5).abs() < 0.25, "estimated {}", scanned.alpha);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(fit_with_kmin(&[], 1).is_none());
        assert!(fit_with_kmin(&[5], 1).is_none());
        assert!(fit_with_kmin(&[3, 4], 0).is_none());
        assert!(fit_with_kmin(&[2, 2, 2], 2).is_none(), "constant tail has no MLE");
    }

    #[test]
    fn sampler_respects_kmin_and_is_seeded() {
        let s = sample_power_law(1000, 2.5, 3, 5);
        assert!(s.iter().all(|&v| v >= 3));
        assert_eq!(s, sample_power_law(1000, 2.5, 3, 5));
        assert_ne!(s, sample_power_law(1000, 2.5, 3, 6));
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }
}
