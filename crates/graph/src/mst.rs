//! Minimum spanning trees (Kruskal with union-find, Prim).
//!
//! §III-A of the paper cites "inclusion of a minimum spanning tree" as a
//! basic property trimmed subgraphs may be asked to maintain; the localized
//! topology-control algorithms in `csn-trimming` (LMST) build per-node local
//! MSTs with this module.

use crate::graph::{NodeId, WeightedGraph};

/// Disjoint-set union with path compression and union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), rank: vec![0; n], sets: n }
    }

    /// Representative of the set containing `x`.
    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Merges the sets of `a` and `b`; returns `false` if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        self.sets -= 1;
        true
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }
}

/// Minimum spanning forest via Kruskal. Returns the chosen edges
/// `(u, v, w)`; ties are broken deterministically by `(w, u, v)`.
///
/// # Examples
///
/// ```
/// use csn_graph::{WeightedGraph, mst::kruskal};
///
/// let mut g = WeightedGraph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 2.0);
/// g.add_edge(0, 2, 3.0);
/// let tree = kruskal(&g);
/// assert_eq!(tree.len(), 2);
/// assert_eq!(tree.iter().map(|e| e.2).sum::<f64>(), 3.0);
/// ```
pub fn kruskal(g: &WeightedGraph) -> Vec<(NodeId, NodeId, f64)> {
    let mut edges: Vec<(NodeId, NodeId, f64)> = g.edges().collect();
    edges.sort_by(|a, b| {
        a.2.partial_cmp(&b.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
    });
    let mut uf = UnionFind::new(g.node_count());
    let mut tree = Vec::new();
    for (u, v, w) in edges {
        if uf.union(u, v) {
            tree.push((u, v, w));
        }
    }
    tree
}

/// Minimum spanning tree via Prim from `root`, restricted to `root`'s
/// connected component. Returns tree edges.
pub fn prim(g: &WeightedGraph, root: NodeId) -> Vec<(NodeId, NodeId, f64)> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct E(f64, NodeId, NodeId); // weight, from, to
    impl Eq for E {}
    impl Ord for E {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .0
                .partial_cmp(&self.0)
                .unwrap_or(Ordering::Equal)
                .then_with(|| (other.1, other.2).cmp(&(self.1, self.2)))
        }
    }
    impl PartialOrd for E {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = g.node_count();
    let mut in_tree = vec![false; n];
    let mut heap = BinaryHeap::new();
    let mut tree = Vec::new();
    in_tree[root] = true;
    for &(v, w) in g.neighbors(root) {
        heap.push(E(w, root, v));
    }
    while let Some(E(w, u, v)) = heap.pop() {
        if in_tree[v] {
            continue;
        }
        in_tree[v] = true;
        tree.push((u, v, w));
        for &(x, wx) in g.neighbors(v) {
            if !in_tree[x] {
                heap.push(E(wx, v, x));
            }
        }
    }
    tree
}

/// Total weight of an edge set.
pub fn total_weight(edges: &[(NodeId, NodeId, f64)]) -> f64 {
    edges.iter().map(|e| e.2).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedGraph {
        let mut g = WeightedGraph::new(5);
        g.add_edge(0, 1, 2.0);
        g.add_edge(0, 3, 6.0);
        g.add_edge(1, 2, 3.0);
        g.add_edge(1, 3, 8.0);
        g.add_edge(1, 4, 5.0);
        g.add_edge(2, 4, 7.0);
        g.add_edge(3, 4, 9.0);
        g
    }

    #[test]
    fn kruskal_weight_on_known_graph() {
        let tree = kruskal(&sample());
        assert_eq!(tree.len(), 4);
        assert_eq!(total_weight(&tree), 2.0 + 3.0 + 5.0 + 6.0);
    }

    #[test]
    fn prim_matches_kruskal_weight() {
        let g = sample();
        for root in g.nodes() {
            let t = prim(&g, root);
            assert_eq!(t.len(), 4);
            assert_eq!(total_weight(&t), 16.0, "root {root}");
        }
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        assert_eq!(kruskal(&g).len(), 2);
        assert_eq!(prim(&g, 0).len(), 1, "prim stays in its component");
    }

    #[test]
    fn union_find_counts_sets() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.set_count(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(2));
    }

    #[test]
    fn random_graph_prim_equals_kruskal() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut g = WeightedGraph::new(40);
        for u in 0..40 {
            for v in (u + 1)..40 {
                if rng.gen::<f64>() < 0.2 {
                    g.add_edge(u, v, rng.gen::<f64>());
                }
            }
        }
        let k = total_weight(&kruskal(&g));
        let p = total_weight(&prim(&g, 0));
        // Same component assumed (dense ER at p=0.2, n=40 is connected whp).
        assert!((k - p).abs() < 1e-9, "{k} vs {p}");
    }
}
