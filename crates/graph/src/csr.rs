//! Frozen CSR (compressed sparse row) graph representations.
//!
//! [`Graph`] and friends store one `Vec` per node — convenient to mutate,
//! but every neighbor scan chases a pointer. The frozen counterparts here
//! pack all neighbor lists into two flat arrays (`offsets` + `targets`), so
//! traversal-heavy kernels stream through contiguous memory. Freeze a graph
//! once per analysis with [`Graph::freeze`], run any of the generic kernels
//! on the result, and [`CsrGraph::thaw`] back if mutation is needed again.
//!
//! Freezing preserves each node's neighbor *order* exactly as stored in the
//! adjacency lists. This is load-bearing: kernels like DFS preorder and BFS
//! parent selection are order-sensitive, and the experiment snapshots assert
//! byte-identical output whichever representation runs the kernel.
//!
//! # Performance
//!
//! [`CsrGraph`] stores `usize` offsets and targets — 8 bytes per adjacency
//! entry on 64-bit targets, 56 heap bytes per node for a Barabási–Albert
//! graph with m = 3. For million-node graphs the [`crate::compact`] variants
//! halve that (`u32` ids, 28 bytes/node) or compress further (varint
//! deltas), behind the same [`GraphView`] trait; measured bytes/node for all
//! three live in the committed `BENCH_scale.json` (see SCALING.md).
//! [`CsrGraph::heap_bytes`] reports this representation's actual allocation
//! so the comparison is measured, not estimated.
//!
//! # Examples
//!
//! ```
//! use csn_graph::{Graph, GraphView};
//!
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
//! let csr = g.freeze();
//! assert_eq!(csr.node_count(), 4);
//! assert_eq!(csr.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
//! assert_eq!(csr.thaw(), g);
//! ```

use crate::graph::{Digraph, Graph, NodeId, WeightedDigraph, WeightedGraph};
use crate::view::{
    DigraphView, GraphView, SliceNeighbors, SliceWeightedNeighbors, WeightedGraphView,
};

/// Packs per-node lists into a CSR pair `(offsets, flat)`, preserving order.
fn pack<T: Copy>(lists: &[Vec<T>]) -> (Vec<usize>, Vec<T>) {
    let mut offsets = Vec::with_capacity(lists.len() + 1);
    offsets.push(0);
    let total = lists.iter().map(Vec::len).sum();
    let mut flat = Vec::with_capacity(total);
    for list in lists {
        flat.extend_from_slice(list);
        offsets.push(flat.len());
    }
    (offsets, flat)
}

/// A frozen undirected graph in CSR form.
///
/// Immutable by construction: `offsets[u]..offsets[u + 1]` indexes the
/// packed `targets` array to give `u`'s neighbors. Build one with
/// [`Graph::freeze`]; convert back with [`CsrGraph::thaw`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    edge_count: usize,
}

impl CsrGraph {
    /// Freezes `g` into CSR form, preserving neighbor order.
    pub fn from_graph(g: &Graph) -> Self {
        let (offsets, targets) = {
            let lists: Vec<Vec<NodeId>> =
                g.nodes().map(|u| Graph::neighbors(g, u).to_vec()).collect();
            pack(&lists)
        };
        CsrGraph { offsets, targets, edge_count: Graph::edge_count(g) }
    }

    /// Neighbors of `u` as a slice of the packed target array.
    pub fn neighbor_slice(&self, u: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Thaws back into a mutable adjacency-list [`Graph`] with the same
    /// edge set (and the same neighbor order).
    pub fn thaw(&self) -> Graph {
        let mut g = Graph::new(self.node_count());
        for u in self.nodes() {
            for v in self.neighbor_slice(u) {
                if u < *v {
                    g.add_edge(u, *v);
                }
            }
        }
        g
    }

    /// Heap bytes held by the CSR arrays (capacity, not just length) — the
    /// number `BENCH_scale.json` reports as `csr` bytes per node, for
    /// comparison with [`crate::CompactCsrGraph::heap_bytes`].
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.targets.capacity() * std::mem::size_of::<NodeId>()
    }
}

impl GraphView for CsrGraph {
    type Neighbors<'a> = SliceNeighbors<'a>;

    fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn degree(&self, u: NodeId) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    fn neighbors(&self, u: NodeId) -> SliceNeighbors<'_> {
        self.neighbor_slice(u).iter().copied()
    }
}

/// A frozen directed graph in CSR form (both directions packed, so
/// in-neighbor queries are as cheap as out-neighbor ones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrDigraph {
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_targets: Vec<NodeId>,
    arc_count: usize,
}

impl CsrDigraph {
    /// Freezes `d` into CSR form, preserving arc-list order.
    pub fn from_digraph(d: &Digraph) -> Self {
        let out: Vec<Vec<NodeId>> =
            d.nodes().map(|u| Digraph::out_neighbors(d, u).to_vec()).collect();
        let inn: Vec<Vec<NodeId>> =
            d.nodes().map(|u| Digraph::in_neighbors(d, u).to_vec()).collect();
        let (out_offsets, out_targets) = pack(&out);
        let (in_offsets, in_targets) = pack(&inn);
        CsrDigraph { out_offsets, out_targets, in_offsets, in_targets, arc_count: d.arc_count() }
    }

    /// Out-neighbors of `u` as a slice.
    pub fn out_neighbor_slice(&self, u: NodeId) -> &[NodeId] {
        &self.out_targets[self.out_offsets[u]..self.out_offsets[u + 1]]
    }

    /// In-neighbors of `u` as a slice.
    pub fn in_neighbor_slice(&self, u: NodeId) -> &[NodeId] {
        &self.in_targets[self.in_offsets[u]..self.in_offsets[u + 1]]
    }

    /// Thaws back into a mutable [`Digraph`] with the same arc set.
    pub fn thaw(&self) -> Digraph {
        let mut d = Digraph::new(self.node_count());
        for u in self.nodes() {
            for v in self.out_neighbor_slice(u) {
                d.add_arc(u, *v);
            }
        }
        d
    }
}

impl DigraphView for CsrDigraph {
    type OutNeighbors<'a> = SliceNeighbors<'a>;
    type InNeighbors<'a> = SliceNeighbors<'a>;

    fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    fn arc_count(&self) -> usize {
        self.arc_count
    }

    fn out_degree(&self, u: NodeId) -> usize {
        self.out_offsets[u + 1] - self.out_offsets[u]
    }

    fn in_degree(&self, u: NodeId) -> usize {
        self.in_offsets[u + 1] - self.in_offsets[u]
    }

    fn out_neighbors(&self, u: NodeId) -> SliceNeighbors<'_> {
        self.out_neighbor_slice(u).iter().copied()
    }

    fn in_neighbors(&self, u: NodeId) -> SliceNeighbors<'_> {
        self.in_neighbor_slice(u).iter().copied()
    }
}

/// A frozen weighted graph in CSR form: the out-adjacency of an undirected
/// or directed weighted graph packed as `(target, weight)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedCsrGraph {
    offsets: Vec<usize>,
    targets: Vec<(NodeId, f64)>,
}

impl WeightedCsrGraph {
    /// Freezes an undirected weighted graph (each edge appears in both
    /// endpoints' rows, as in the adjacency-list original).
    pub fn from_weighted_graph(g: &WeightedGraph) -> Self {
        let lists: Vec<Vec<(NodeId, f64)>> =
            g.nodes().map(|u| WeightedGraph::neighbors(g, u).to_vec()).collect();
        let (offsets, targets) = pack(&lists);
        WeightedCsrGraph { offsets, targets }
    }

    /// Freezes a weighted digraph's out-adjacency.
    pub fn from_weighted_digraph(d: &WeightedDigraph) -> Self {
        let lists: Vec<Vec<(NodeId, f64)>> =
            d.nodes().map(|u| WeightedDigraph::out_neighbors(d, u).to_vec()).collect();
        let (offsets, targets) = pack(&lists);
        WeightedCsrGraph { offsets, targets }
    }

    /// Weighted out-neighbors of `u` as a slice.
    pub fn neighbor_slice(&self, u: NodeId) -> &[(NodeId, f64)] {
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }
}

impl WeightedGraphView for WeightedCsrGraph {
    type WeightedNeighbors<'a> = SliceWeightedNeighbors<'a>;

    fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    fn weighted_neighbors(&self, u: NodeId) -> SliceWeightedNeighbors<'_> {
        self.neighbor_slice(u).iter().copied()
    }
}

impl Graph {
    /// Freezes this graph into an immutable [`CsrGraph`], preserving each
    /// node's neighbor order, so every generic kernel produces identical
    /// output on either representation.
    ///
    /// # Examples
    ///
    /// ```
    /// use csn_graph::{Graph, GraphView, traversal};
    ///
    /// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
    /// let csr = g.freeze();
    /// assert_eq!(csr.degree(1), 2);
    /// assert_eq!(
    ///     traversal::connected_components(&g),
    ///     traversal::connected_components(&csr),
    /// );
    /// ```
    pub fn freeze(&self) -> CsrGraph {
        CsrGraph::from_graph(self)
    }
}

impl Digraph {
    /// Freezes this digraph into an immutable [`CsrDigraph`], preserving
    /// arc-list order in both directions.
    pub fn freeze(&self) -> CsrDigraph {
        CsrDigraph::from_digraph(self)
    }
}

impl WeightedGraph {
    /// Freezes this weighted graph into an immutable [`WeightedCsrGraph`].
    pub fn freeze(&self) -> WeightedCsrGraph {
        WeightedCsrGraph::from_weighted_graph(self)
    }
}

impl WeightedDigraph {
    /// Freezes this weighted digraph's out-adjacency into an immutable
    /// [`WeightedCsrGraph`].
    pub fn freeze(&self) -> WeightedCsrGraph {
        WeightedCsrGraph::from_weighted_digraph(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_preserves_neighbor_order() {
        // add_edge order defines adjacency order; CSR must not re-sort it.
        let mut g = Graph::new(4);
        g.add_edge(0, 3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let csr = g.freeze();
        assert_eq!(csr.neighbor_slice(0), &[3, 1, 2]);
        assert_eq!(csr.neighbor_slice(0), Graph::neighbors(&g, 0));
    }

    #[test]
    fn freeze_thaw_round_trips_edge_set() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)]).unwrap();
        assert_eq!(g.freeze().thaw(), g);
    }

    #[test]
    fn csr_counts_match_original() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let csr = g.freeze();
        assert_eq!(csr.node_count(), 5);
        assert_eq!(GraphView::edge_count(&csr), 3);
        assert_eq!(GraphView::degrees(&csr), Graph::degrees(&g));
        assert_eq!(csr.degree(4), 0, "isolated node has an empty row");
    }

    #[test]
    fn csr_digraph_round_trip_and_directions() {
        let d = Digraph::from_arcs(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]).unwrap();
        let csr = d.freeze();
        assert_eq!(csr.arc_count(), 4);
        assert_eq!(csr.out_neighbor_slice(0), Digraph::out_neighbors(&d, 0));
        assert_eq!(csr.in_neighbor_slice(0), Digraph::in_neighbors(&d, 0));
        assert_eq!(csr.thaw(), d);
    }

    #[test]
    fn weighted_csr_exposes_both_endpoints() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 2.5);
        g.add_edge(1, 2, 0.5);
        let csr = g.freeze();
        assert_eq!(csr.neighbor_slice(1), &[(0, 2.5), (2, 0.5)]);
        assert_eq!(WeightedGraphView::node_count(&csr), 3);

        let mut d = WeightedDigraph::new(3);
        d.add_arc(0, 1, 2.5);
        let dcsr = d.freeze();
        assert_eq!(dcsr.neighbor_slice(0), &[(1, 2.5)]);
        assert!(dcsr.neighbor_slice(1).is_empty(), "arcs stay directional");
    }
}
