//! Node centrality measures surveyed in §III of the paper: degree,
//! closeness, betweenness (Brandes' algorithm), eigenvector centrality,
//! PageRank, and HITS.
//!
//! The paper uses these as the canonical *node-local* importance measures,
//! contrasting them with the *global* structures the rest of the workspace
//! uncovers; PageRank and HITS also reappear in §IV-B as examples of
//! "dynamic labeling" processes.
//!
//! All kernels are generic over [`GraphView`] / [`DigraphView`]. The
//! per-source pieces ([`brandes_delta`], [`closeness_one`]) are public so
//! the source-parallel variants in [`crate::parallel`] run the *same* code
//! per source and merely reorder the scheduling — which is what makes their
//! results bit-identical to the serial functions here.

use crate::graph::NodeId;
use crate::scratch::{BfsScratch, BrandesScratch, NO_PRED};
use crate::view::{DigraphView, GraphView};

/// Degree centrality: `degree(u) / (n - 1)`.
pub fn degree_centrality<G: GraphView>(g: &G) -> Vec<f64> {
    let n = g.node_count();
    if n <= 1 {
        return vec![0.0; n];
    }
    let denom = (n - 1) as f64;
    g.nodes().map(|u| g.degree(u) as f64 / denom).collect()
}

/// The closeness score of a single node: one BFS plus the Wasserman–Faust
/// reachable-fraction scaling. [`closeness_centrality`] and
/// [`crate::parallel::closeness_par`] both delegate here.
pub fn closeness_one<G: GraphView>(g: &G, u: NodeId) -> f64 {
    closeness_one_into(g, u, &mut BfsScratch::new())
}

/// [`closeness_one`] over a caller-provided BFS scratch: identical result,
/// zero allocation once the scratch has grown to the graph's size (see the
/// reuse contract in [`crate::scratch`]).
pub fn closeness_one_into<G: GraphView>(g: &G, u: NodeId, scratch: &mut BfsScratch) -> f64 {
    let n = g.node_count();
    crate::traversal::bfs_scratch(g, u, scratch);
    let mut sum = 0usize;
    let mut reachable = 0usize;
    for v in 0..n {
        if scratch.visited(v) && scratch.dist[v] > 0 {
            sum += scratch.dist[v];
            reachable += 1;
        }
    }
    if sum > 0 {
        let r = reachable as f64;
        (r / (n - 1) as f64) * (r / sum as f64)
    } else {
        0.0
    }
}

/// Closeness centrality: `(reachable - 1) / sum_of_distances`, scaled by the
/// reachable fraction (the Wasserman–Faust improvement, robust to
/// disconnected graphs). Isolated nodes score 0. One BFS scratch is reused
/// across all sources.
pub fn closeness_centrality<G: GraphView>(g: &G) -> Vec<f64> {
    let mut sc = BfsScratch::new();
    g.nodes().map(|u| closeness_one_into(g, u, &mut sc)).collect()
}

/// One source's Brandes dependency vector: `delta[w]` is the contribution of
/// source `s` to the (un-halved) betweenness of `w`, with `delta[s]` forced
/// to `0.0` so callers can fold the whole vector unconditionally.
///
/// [`betweenness_centrality`] and [`crate::parallel::betweenness_par`] both
/// accumulate exactly these vectors in source order, so their outputs agree
/// bit-for-bit.
pub fn brandes_delta<G: GraphView>(g: &G, s: NodeId) -> Vec<f64> {
    let mut out = Vec::new();
    brandes_delta_into(g, s, &mut BrandesScratch::new(), &mut out);
    out
}

/// [`brandes_delta`] into a caller-provided scratch and output vector:
/// bit-identical results, zero allocation once both have grown to the
/// graph's size. The scratch may have been used on any other graph before
/// (see the reuse contract in [`crate::scratch`]); `out` is overwritten.
///
/// Predecessor lists live in the scratch's flat store, chained newest-first;
/// the iteration order differs from the fresh-alloc path's `Vec<Vec<_>>`
/// table, but within one sink `w` every predecessor `v` is distinct and its
/// contribution `sigma[v] / sigma[w] * (1.0 + delta[w])` reads only values
/// fixed for the whole of `w`'s processing, so each `delta[v]` sees the same
/// additions in the same cross-`w` order — the f64 output is bit-identical.
pub fn brandes_delta_into<G: GraphView>(
    g: &G,
    s: NodeId,
    sc: &mut BrandesScratch,
    out: &mut Vec<f64>,
) {
    let n = g.node_count();
    sc.begin(n);
    sc.discover(s, 0);
    sc.sigma[s] = 1.0;
    sc.queue.push_back(s);
    while let Some(u) = sc.queue.pop_front() {
        sc.stack.push(u);
        let du = sc.dist[u];
        for v in g.neighbors(u) {
            if !sc.discovered(v) {
                sc.discover(v, du + 1);
                sc.queue.push_back(v);
            }
            if sc.dist[v] == du + 1 {
                sc.sigma[v] += sc.sigma[u];
                sc.push_pred(v, u);
            }
        }
    }
    // Dependency accumulation in reverse BFS order; the stack is kept (not
    // popped) so the touched entries can be reset afterwards.
    for i in (0..sc.stack.len()).rev() {
        let w = sc.stack[i];
        let mut p = sc.pred_head[w];
        while p != NO_PRED {
            let v = sc.pred_node[p];
            sc.delta[v] += sc.sigma[v] / sc.sigma[w] * (1.0 + sc.delta[w]);
            p = sc.pred_next[p];
        }
    }
    out.clear();
    out.resize(n, 0.0);
    for &w in &sc.stack {
        out[w] = sc.delta[w];
    }
    out[s] = 0.0;
    sc.reset_round();
}

/// Betweenness centrality via Brandes' algorithm (unweighted).
///
/// Returns raw (unnormalized) scores; for undirected graphs each pair is
/// counted once (scores are halved at the end).
///
/// # Examples
///
/// ```
/// use csn_graph::{Graph, centrality::betweenness_centrality};
///
/// // Path 0-1-2: the middle node bridges the single pair (0, 2).
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let b = betweenness_centrality(&g);
/// assert_eq!(b, vec![0.0, 1.0, 0.0]);
/// ```
pub fn betweenness_centrality<G: GraphView>(g: &G) -> Vec<f64> {
    let n = g.node_count();
    let mut bc = vec![0.0f64; n];
    // Brandes: one BFS per source with dependency accumulation, over a
    // single scratch + delta buffer reused for every source.
    let mut sc = BrandesScratch::new();
    let mut delta = Vec::new();
    for s in g.nodes() {
        brandes_delta_into(g, s, &mut sc, &mut delta);
        for (b, d) in bc.iter_mut().zip(&delta) {
            *b += d;
        }
    }
    // Each undirected pair was counted from both endpoints.
    for b in &mut bc {
        *b /= 2.0;
    }
    bc
}

/// Naive betweenness via all-pairs BFS path counting; `O(n² · m)`.
/// Reference implementation used to validate [`betweenness_centrality`].
pub fn betweenness_naive<G: GraphView>(g: &G) -> Vec<f64> {
    let n = g.node_count();
    let mut bc = vec![0.0f64; n];
    for s in 0..n {
        let dist = crate::traversal::bfs_distances(g, s);
        for t in (s + 1)..n {
            if dist[t] == usize::MAX {
                continue;
            }
            // Count shortest paths s->t and through each v by DP over BFS DAG.
            let (total, through) = count_paths(g, s, t, &dist);
            if total == 0.0 {
                continue;
            }
            for v in 0..n {
                if v != s && v != t {
                    bc[v] += through[v] / total;
                }
            }
        }
    }
    bc
}

fn count_paths<G: GraphView>(g: &G, s: NodeId, t: NodeId, dist_s: &[usize]) -> (f64, Vec<f64>) {
    let n = g.node_count();
    let dist_t = crate::traversal::bfs_distances(g, t);
    let d = dist_s[t];
    // sigma_from_s[v]: shortest paths s->v; sigma_to_t[v]: shortest paths v->t.
    let mut order: Vec<NodeId> = (0..n).filter(|&v| dist_s[v] != usize::MAX).collect();
    order.sort_by_key(|&v| dist_s[v]);
    let mut from_s = vec![0.0f64; n];
    from_s[s] = 1.0;
    for &v in &order {
        for w in g.neighbors(v) {
            if dist_s[w] == dist_s[v] + 1 {
                from_s[w] += from_s[v];
            }
        }
    }
    let mut order_t: Vec<NodeId> = (0..n).filter(|&v| dist_t[v] != usize::MAX).collect();
    order_t.sort_by_key(|&v| dist_t[v]);
    let mut to_t = vec![0.0f64; n];
    to_t[t] = 1.0;
    for &v in &order_t {
        for w in g.neighbors(v) {
            if dist_t[w] == dist_t[v] + 1 {
                to_t[w] += to_t[v];
            }
        }
    }
    let total = from_s[t];
    let mut through = vec![0.0f64; n];
    for v in 0..n {
        if dist_s[v] != usize::MAX && dist_t[v] != usize::MAX && dist_s[v] + dist_t[v] == d {
            through[v] = from_s[v] * to_t[v];
        }
    }
    (total, through)
}

/// Eigenvector centrality by power iteration on the adjacency matrix;
/// L2-normalized. Returns `None` if the iteration fails to converge in
/// `max_iter` steps (e.g. bipartite oscillation without damping).
pub fn eigenvector_centrality<G: GraphView>(g: &G, max_iter: usize, tol: f64) -> Option<Vec<f64>> {
    let n = g.node_count();
    if n == 0 {
        return Some(Vec::new());
    }
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    for _ in 0..max_iter {
        let mut next = vec![0.0f64; n];
        for u in g.nodes() {
            for v in g.neighbors(u) {
                next[u] += x[v];
            }
            // Shifted iteration (A + I): same eigenvectors, breaks the
            // bipartite ±λ oscillation and speeds convergence.
            next[u] += x[u];
        }
        let norm = next.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            return Some(vec![0.0; n]);
        }
        for v in &mut next {
            *v /= norm;
        }
        let diff: f64 = next.iter().zip(&x).map(|(a, b)| (a - b).abs()).sum();
        x = next;
        if diff < tol {
            return Some(x);
        }
    }
    None
}

/// PageRank on a digraph with damping `d`; dangling mass is redistributed
/// uniformly. Scores sum to 1.
///
/// The paper lists PageRank as an eigenvector-centrality variant (§III) and
/// as a "dynamic labeling" process (§IV-B). Returns the score vector and the
/// number of iterations performed.
pub fn pagerank<D: DigraphView>(g: &D, d: f64, max_iter: usize, tol: f64) -> (Vec<f64>, usize) {
    let n = g.node_count();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    for iter in 1..=max_iter {
        let mut next = vec![(1.0 - d) * uniform; n];
        let mut dangling = 0.0;
        for u in g.nodes() {
            let deg = g.out_degree(u);
            if deg == 0 {
                dangling += rank[u];
            } else {
                let share = d * rank[u] / deg as f64;
                for v in g.out_neighbors(u) {
                    next[v] += share;
                }
            }
        }
        let dangling_share = d * dangling * uniform;
        for v in &mut next {
            *v += dangling_share;
        }
        let diff: f64 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if diff < tol {
            return (rank, iter);
        }
    }
    (rank, max_iter)
}

/// HITS hubs-and-authorities scores `(hubs, authorities)`, L2-normalized
/// (Kleinberg; the paper's other §IV-B dynamic-labeling example).
pub fn hits<D: DigraphView>(g: &D, max_iter: usize, tol: f64) -> (Vec<f64>, Vec<f64>) {
    let n = g.node_count();
    let mut hub = vec![1.0f64; n];
    let mut auth = vec![1.0f64; n];
    for _ in 0..max_iter {
        let mut new_auth = vec![0.0f64; n];
        for v in g.nodes() {
            for u in g.in_neighbors(v) {
                new_auth[v] += hub[u];
            }
        }
        normalize(&mut new_auth);
        let mut new_hub = vec![0.0f64; n];
        for u in g.nodes() {
            for v in g.out_neighbors(u) {
                new_hub[u] += new_auth[v];
            }
        }
        normalize(&mut new_hub);
        let diff: f64 = new_hub.iter().zip(&hub).map(|(a, b)| (a - b).abs()).sum::<f64>()
            + new_auth.iter().zip(&auth).map(|(a, b)| (a - b).abs()).sum::<f64>();
        hub = new_hub;
        auth = new_auth;
        if diff < tol {
            break;
        }
    }
    (hub, auth)
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::{Digraph, Graph};

    #[test]
    fn degree_centrality_of_star_center_is_one() {
        let g = generators::star(4);
        let dc = degree_centrality(&g);
        assert_eq!(dc[0], 1.0);
        assert!((dc[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn closeness_highest_at_path_center() {
        let g = generators::path(5);
        let cc = closeness_centrality(&g);
        assert!(cc[2] > cc[1] && cc[1] > cc[0]);
        assert!((cc[2] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_handles_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        let cc = closeness_centrality(&g);
        assert_eq!(cc[2], 0.0);
        assert!(cc[0] > 0.0);
    }

    #[test]
    fn betweenness_on_path_matches_closed_form() {
        // On a path of n nodes, bc(i) = i * (n-1-i).
        let g = generators::path(6);
        let bc = betweenness_centrality(&g);
        for (i, &b) in bc.iter().enumerate() {
            assert!((b - (i * (5 - i)) as f64).abs() < 1e-9, "node {i}: {b}");
        }
    }

    #[test]
    fn betweenness_of_star_center() {
        // Center bridges all C(k,2) leaf pairs.
        let g = generators::star(5);
        let bc = betweenness_centrality(&g);
        assert!((bc[0] - 10.0).abs() < 1e-9);
        assert_eq!(bc[1], 0.0);
    }

    #[test]
    fn brandes_matches_naive_on_random_graph() {
        let g = generators::erdos_renyi(40, 0.15, 99).unwrap();
        let fast = betweenness_centrality(&g);
        let slow = betweenness_naive(&g);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn scratch_reuse_is_bitwise_identical_across_graphs() {
        // One scratch carried across sources of two different graphs (the
        // second smaller than the first) must reproduce the fresh-alloc
        // path bit-for-bit — stale stamps, sigma, or delta must not leak.
        let g1 = generators::erdos_renyi(60, 0.1, 11).unwrap();
        let g2 = generators::star(7);
        let mut sc = crate::scratch::BrandesScratch::new();
        let mut buf = Vec::new();
        for _ in 0..2 {
            for s in 0..60 {
                brandes_delta_into(&g1, s, &mut sc, &mut buf);
                assert_eq!(buf, brandes_delta(&g1, s), "g1 source {s}");
            }
            for s in 0..8 {
                brandes_delta_into(&g2, s, &mut sc, &mut buf);
                assert_eq!(buf, brandes_delta(&g2, s), "g2 source {s}");
            }
        }
        let mut bfs = crate::scratch::BfsScratch::new();
        for s in 0..60 {
            let one = closeness_one(&g1, s);
            assert!(closeness_one_into(&g1, s, &mut bfs).to_bits() == one.to_bits());
        }
    }

    #[test]
    fn centrality_bitwise_identical_on_frozen_graph() {
        // CSR preserves neighbor order, so even the f64 accumulation order
        // is the same — exact equality, not tolerance.
        let g = generators::erdos_renyi(40, 0.15, 7).unwrap();
        let csr = g.freeze();
        assert_eq!(betweenness_centrality(&g), betweenness_centrality(&csr));
        assert_eq!(closeness_centrality(&g), closeness_centrality(&csr));
        assert_eq!(degree_centrality(&g), degree_centrality(&csr));
    }

    #[test]
    fn eigenvector_centrality_ranks_hub_highest() {
        let g = generators::star(5);
        let ec = eigenvector_centrality(&g, 1000, 1e-10).expect("converges");
        for leaf in 1..=5 {
            assert!(ec[0] > ec[leaf]);
        }
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_authority() {
        let mut d = Digraph::new(4);
        // All point to node 3.
        d.add_arc(0, 3);
        d.add_arc(1, 3);
        d.add_arc(2, 3);
        let (pr, iters) = pagerank(&d, 0.85, 200, 1e-12);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr[3] > pr[0]);
        assert!(iters > 1);
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let mut d = Digraph::new(4);
        for i in 0..4 {
            d.add_arc(i, (i + 1) % 4);
        }
        let (pr, _) = pagerank(&d, 0.85, 500, 1e-12);
        for &p in &pr {
            assert!((p - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_identical_on_frozen_digraph() {
        let g = generators::erdos_renyi(30, 0.2, 3).unwrap();
        let d = g.to_digraph();
        assert_eq!(pagerank(&d, 0.85, 200, 1e-12), pagerank(&d.freeze(), 0.85, 200, 1e-12));
    }

    #[test]
    fn hits_identifies_hub_and_authority() {
        // 0 and 1 are hubs pointing at authorities 2 and 3.
        let d = Digraph::from_arcs(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        let (hub, auth) = hits(&d, 100, 1e-10);
        assert!(hub[0] > auth[0]);
        assert!(auth[2] > hub[2]);
        assert!((hub[0] - hub[1]).abs() < 1e-9);
        assert!((auth[2] - auth[3]).abs() < 1e-9);
    }
}
