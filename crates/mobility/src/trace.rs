//! Continuous-time contact traces and discretization.

use csn_graph::NodeId;
use csn_temporal::{TimeEvolvingGraph, TimeUnit};
use serde::{Deserialize, Serialize};

/// One contact: nodes `u` and `v` are in range during `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContactEvent {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Contact start time (seconds).
    pub start: f64,
    /// Contact end time (seconds), exclusive.
    pub end: f64,
}

impl ContactEvent {
    /// Contact duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A contact trace: all contacts among `n` nodes over `[0, duration)`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ContactTrace {
    n: usize,
    duration: f64,
    events: Vec<ContactEvent>,
}

impl ContactTrace {
    /// Creates a trace; events are sorted by `(start, u, v)` and validated.
    ///
    /// The endpoint tie-break makes the stored order *canonical*: two
    /// generators that produce the same event set in different discovery
    /// orders (e.g. the grid-indexed and the all-pairs contact scans, or a
    /// `HashMap` drain whose iteration order varies across processes)
    /// construct byte-identical traces. A start-only stable sort would
    /// instead preserve the caller's order among equal-start events.
    ///
    /// # Panics
    ///
    /// Panics if an event has `end <= start`, an endpoint out of range, or
    /// `u == v`.
    pub fn new(n: usize, duration: f64, mut events: Vec<ContactEvent>) -> Self {
        for e in &events {
            assert!(e.u < n && e.v < n, "endpoint out of range");
            assert_ne!(e.u, e.v, "self-contact");
            assert!(e.end > e.start, "empty or inverted contact");
        }
        events.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .expect("finite times")
                .then_with(|| (a.u, a.v).cmp(&(b.u, b.v)))
        });
        ContactTrace { n, duration, events }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Trace duration in seconds.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// The contact events, sorted by start time.
    pub fn events(&self) -> &[ContactEvent] {
        &self.events
    }

    /// Events touching the pair `(u, v)`, sorted by start.
    pub fn pair_events(&self, u: NodeId, v: NodeId) -> Vec<ContactEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| (e.u == u && e.v == v) || (e.u == v && e.v == u))
            .collect()
    }

    /// Discretizes into a time-evolving graph with time step `dt`: edge
    /// `(u, v)` gets label `i` iff the contact overlaps `[i·dt, (i+1)·dt)`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn to_time_evolving_graph(&self, dt: f64) -> TimeEvolvingGraph {
        assert!(dt > 0.0, "dt must be positive");
        let horizon = (self.duration / dt).ceil() as TimeUnit;
        let mut eg = TimeEvolvingGraph::new(self.n, horizon.max(1));
        for e in &self.events {
            let first = (e.start / dt).floor() as TimeUnit;
            let last_excl = (e.end / dt).ceil() as TimeUnit;
            for t in first..last_excl.min(horizon) {
                eg.add_contact(e.u, e.v, t);
            }
        }
        eg
    }

    /// Whether the trace satisfies every generator contract: each event
    /// lies inside `[0, duration]`, events of one pair never overlap, and
    /// the stored order is the canonical `(start, u, v)` sort. The mobility
    /// proptest suite and the `--scenario` perf gates assert this for every
    /// generated trace.
    pub fn is_well_formed(&self) -> bool {
        use std::collections::HashMap;
        for e in &self.events {
            if !(e.start >= 0.0 && e.end > e.start && e.end <= self.duration) {
                return false;
            }
            if e.u >= self.n || e.v >= self.n || e.u == e.v {
                return false;
            }
        }
        let sorted = self
            .events
            .windows(2)
            .all(|w| (w[0].start, w[0].u, w[0].v) <= (w[1].start, w[1].u, w[1].v));
        if !sorted {
            return false;
        }
        // Per-pair non-overlap: the events of a pair, in start order, must
        // each end no later than the next begins.
        let mut last_end: HashMap<(NodeId, NodeId), f64> = HashMap::new();
        for e in &self.events {
            let key = (e.u.min(e.v), e.u.max(e.v));
            if let Some(&prev) = last_end.get(&key) {
                if e.start < prev {
                    return false;
                }
            }
            last_end.insert(key, e.end);
        }
        true
    }

    /// Contact durations of every event.
    pub fn contact_durations(&self) -> Vec<f64> {
        self.events.iter().map(ContactEvent::duration).collect()
    }

    /// Inter-contact times: for each node pair with at least two contacts,
    /// the gaps between the end of one contact and the start of the next.
    pub fn inter_contact_times(&self) -> Vec<f64> {
        use std::collections::HashMap;
        let mut per_pair: HashMap<(NodeId, NodeId), Vec<(f64, f64)>> = HashMap::new();
        for e in &self.events {
            let key = (e.u.min(e.v), e.u.max(e.v));
            per_pair.entry(key).or_default().push((e.start, e.end));
        }
        let mut gaps = Vec::new();
        for (_, mut evs) in per_pair {
            evs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            for w in evs.windows(2) {
                let gap = w[1].0 - w[0].1;
                if gap > 0.0 {
                    gaps.push(gap);
                }
            }
        }
        gaps
    }

    /// Total number of contacts per node pair, as a map keyed by the
    /// canonical `(min, max)` pair.
    pub fn contact_counts(&self) -> std::collections::HashMap<(NodeId, NodeId), usize> {
        let mut counts = std::collections::HashMap::new();
        for e in &self.events {
            *counts.entry((e.u.min(e.v), e.u.max(e.v))).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(u: NodeId, v: NodeId, s: f64, e: f64) -> ContactEvent {
        ContactEvent { u, v, start: s, end: e }
    }

    #[test]
    fn trace_sorts_and_validates() {
        let t = ContactTrace::new(3, 10.0, vec![ev(0, 1, 5.0, 6.0), ev(1, 2, 1.0, 2.0)]);
        assert_eq!(t.events()[0].start, 1.0);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.events()[1].duration(), 1.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_event_panics() {
        ContactTrace::new(2, 10.0, vec![ev(0, 1, 5.0, 4.0)]);
    }

    #[test]
    fn discretization_covers_overlapping_units() {
        let t = ContactTrace::new(2, 10.0, vec![ev(0, 1, 1.5, 3.2)]);
        let eg = t.to_time_evolving_graph(1.0);
        assert_eq!(eg.labels(0, 1), Some(&[1, 2, 3][..]));
        assert_eq!(eg.horizon(), 10);
        // Coarser discretization.
        let eg2 = t.to_time_evolving_graph(2.0);
        assert_eq!(eg2.labels(0, 1), Some(&[0, 1][..]));
    }

    #[test]
    fn inter_contact_times_per_pair() {
        let t = ContactTrace::new(
            3,
            20.0,
            vec![ev(0, 1, 1.0, 2.0), ev(0, 1, 5.0, 6.0), ev(0, 1, 10.0, 11.0), ev(1, 2, 3.0, 4.0)],
        );
        let mut gaps = t.inter_contact_times();
        gaps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(gaps, vec![3.0, 4.0]);
        assert_eq!(t.contact_durations().len(), 4);
        assert_eq!(t.contact_counts()[&(0, 1)], 3);
    }

    #[test]
    fn pair_events_are_order_insensitive() {
        let t = ContactTrace::new(3, 10.0, vec![ev(1, 0, 1.0, 2.0), ev(0, 1, 4.0, 5.0)]);
        assert_eq!(t.pair_events(0, 1).len(), 2);
        assert_eq!(t.pair_events(1, 0).len(), 2);
        assert!(t.pair_events(0, 2).is_empty());
    }
}
