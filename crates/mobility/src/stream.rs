//! Streaming contact emission for city-scale traces.
//!
//! A million-contact vehicular/pedestrian trace is cheap to *generate* but
//! expensive to *hold*: materializing every [`ContactEvent`] costs 40 bytes
//! each before any discretization. [`ContactStream`] inverts the dataflow —
//! a generator emits events through a visitor and consumers fold them
//! (counting, discretizing into a [`TimeEvolvingGraph`], accumulating
//! per-node statistics) without the intermediate vector. Collecting into a
//! [`ContactTrace`] stays available as a provided method, and because
//! `ContactTrace::new` sorts canonically, the collected trace is
//! byte-identical to the one the eager `simulate` entry points build — a
//! property the mobility proptest suite and the `--scenario` perf gates
//! both assert.
//!
//! Implementors here wrap the two generators ([`RwpStream`],
//! [`SocialStream`]); [`crate::scenario::CityScenario`] composes them into
//! a heterogeneous city trace.

use crate::rwp::{run_walk, ContactDetection, RandomWaypoint, Walk};
use crate::social::{sample_exp, Population, SocialContactModel};
use crate::trace::{ContactEvent, ContactTrace};
use csn_temporal::{TimeEvolvingGraph, TimeUnit};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A replayable, deterministic source of contact events.
///
/// `for_each_contact` may emit in any order (per-generator discovery
/// order); replaying must emit the identical sequence. Events must satisfy
/// the [`ContactTrace`] contract — inside `[0, duration]`, `u != v`, no
/// per-pair overlap — so that [`ContactStream::collect_trace`] always
/// yields a well-formed trace.
pub trait ContactStream {
    /// Number of nodes (event endpoints are `< node_count()`).
    fn node_count(&self) -> usize;

    /// Trace horizon in seconds.
    fn duration(&self) -> f64;

    /// Emits every contact event to `emit`.
    fn for_each_contact(&self, emit: &mut dyn FnMut(ContactEvent));

    /// Number of contacts the stream emits, without storing them.
    fn count_contacts(&self) -> usize {
        let mut count = 0usize;
        self.for_each_contact(&mut |_| count += 1);
        count
    }

    /// Materializes the full trace (canonically sorted by
    /// [`ContactTrace::new`]). Prefer the streaming consumers at city
    /// scale.
    fn collect_trace(&self) -> ContactTrace {
        let mut events = Vec::new();
        self.for_each_contact(&mut |e| events.push(e));
        ContactTrace::new(self.node_count(), self.duration(), events)
    }

    /// Discretizes straight into a time-evolving graph with step `dt`,
    /// without materializing the event vector — the same label semantics
    /// as [`ContactTrace::to_time_evolving_graph`]: edge `(u, v)` gets
    /// label `i` iff a contact overlaps `[i·dt, (i+1)·dt)`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    fn to_time_evolving_graph(&self, dt: f64) -> TimeEvolvingGraph {
        assert!(dt > 0.0, "dt must be positive");
        let horizon = ((self.duration() / dt).ceil() as TimeUnit).max(1);
        let mut eg = TimeEvolvingGraph::new(self.node_count(), horizon);
        self.for_each_contact(&mut |e| {
            let first = (e.start / dt).floor() as TimeUnit;
            let last_excl = ((e.end / dt).ceil() as TimeUnit).min(horizon);
            for t in first..last_excl {
                eg.add_contact(e.u, e.v, t);
            }
        });
        eg
    }
}

/// [`ContactStream`] over a random-waypoint walk (bounded or unbounded).
///
/// `RwpStream::bounded(m, d, s).collect_trace()` is byte-identical to
/// `m.simulate(d, s)` — the eager entry points are thin wrappers over the
/// same `run_walk` core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RwpStream {
    model: RandomWaypoint,
    walk: Walk,
    duration: f64,
    seed: u64,
    detection: ContactDetection,
}

impl RwpStream {
    /// Walk with waypoints uniform in the unit square.
    ///
    /// # Panics
    ///
    /// Panics on non-positive model parameters or `v_min > v_max`.
    pub fn bounded(model: RandomWaypoint, duration: f64, seed: u64) -> Self {
        model.validate();
        RwpStream { model, walk: Walk::Bounded, duration, seed, detection: ContactDetection::Auto }
    }

    /// Boundary-free walk (uniform-direction trips of
    /// `trip_min..=trip_max`).
    ///
    /// # Panics
    ///
    /// Panics on bad model parameters or `trip_min > trip_max`.
    pub fn unbounded(
        model: RandomWaypoint,
        duration: f64,
        trip_min: f64,
        trip_max: f64,
        seed: u64,
    ) -> Self {
        model.validate();
        assert!(0.0 < trip_min && trip_min <= trip_max, "bad trip range");
        RwpStream {
            model,
            walk: Walk::Unbounded { trip_min, trip_max },
            duration,
            seed,
            detection: ContactDetection::Auto,
        }
    }

    /// Forces a contact-detection back end (the bitwise gates use this).
    pub fn with_detection(mut self, detection: ContactDetection) -> Self {
        self.detection = detection;
        self
    }
}

impl ContactStream for RwpStream {
    fn node_count(&self) -> usize {
        self.model.n
    }

    fn duration(&self) -> f64 {
        self.duration
    }

    fn for_each_contact(&self, emit: &mut dyn FnMut(ContactEvent)) {
        run_walk(&self.model, self.walk, self.duration, self.seed, self.detection, emit);
    }
}

/// [`ContactStream`] over the social-feature Poisson contact process, with
/// optional per-node *activity weights* (attribute-driven rates in the
/// spirit of Orman et al., arXiv:1406.6597: node attributes modulate edge
/// dynamics, not just the feature distance).
///
/// Pair rate: `rate(u, v) = base_rate · exp(−beta · distance(u, v)) · w_u
/// · w_v`, with `w ≡ 1` when no weights are set — in which case
/// `collect_trace()` is byte-identical to [`SocialContactModel::simulate`]
/// (which delegates here).
#[derive(Debug, Clone, PartialEq)]
pub struct SocialStream<'a> {
    model: SocialContactModel,
    population: &'a Population,
    weights: Option<Vec<f64>>,
    duration: f64,
    seed: u64,
}

impl<'a> SocialStream<'a> {
    /// Unweighted stream (all activity weights 1).
    pub fn new(
        model: SocialContactModel,
        population: &'a Population,
        duration: f64,
        seed: u64,
    ) -> Self {
        SocialStream { model, population, weights: None, duration, seed }
    }

    /// Sets per-node activity weights (`rate(u, v)` scales by `w_u · w_v`).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != population.len()` or any weight is
    /// negative or non-finite.
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), self.population.len(), "one weight per person");
        assert!(weights.iter().all(|w| w.is_finite() && *w >= 0.0), "weights must be >= 0");
        self.weights = Some(weights);
        self
    }

    fn pair_rate(&self, u: usize, v: usize) -> f64 {
        let rate = self.model.rate(self.population.distance(u, v));
        match &self.weights {
            Some(w) => rate * w[u] * w[v],
            None => rate,
        }
    }
}

impl ContactStream for SocialStream<'_> {
    fn node_count(&self) -> usize {
        self.population.len()
    }

    fn duration(&self) -> f64 {
        self.duration
    }

    fn for_each_contact(&self, emit: &mut dyn FnMut(ContactEvent)) {
        let n = self.population.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for u in 0..n {
            for v in (u + 1)..n {
                let rate = self.pair_rate(u, v);
                // Zero-rate pairs draw nothing, so adding people with
                // weight 0 does not perturb the other pairs' streams.
                if rate <= 0.0 {
                    continue;
                }
                let mut t = sample_exp(&mut rng, rate);
                while t < self.duration {
                    let d = sample_exp(&mut rng, 1.0 / self.model.mean_duration);
                    let end = (t + d).min(self.duration);
                    if end > t {
                        emit(ContactEvent { u, v, start: t, end });
                    }
                    // Next contact begins after this one ends.
                    t = end + sample_exp(&mut rng, rate);
                }
            }
        }
    }
}

/// Poisson contact process on an explicit pair list — the glue layer
/// [`crate::scenario::CityScenario`] uses to couple pedestrians to the
/// vehicles they board. One shared RNG, pairs processed in list order;
/// every pair must be distinct or per-pair contacts would overlap.
#[derive(Debug, Clone, PartialEq)]
pub struct PairPoissonStream {
    n: usize,
    /// `(u, v, rate)` triples; all `(min, max)` keys distinct.
    pairs: Vec<(usize, usize, f64)>,
    mean_duration: f64,
    duration: f64,
    seed: u64,
}

impl PairPoissonStream {
    /// Builds the stream.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, `u == v`, a repeated pair, or a
    /// non-finite/negative rate.
    pub fn new(
        n: usize,
        pairs: Vec<(usize, usize, f64)>,
        mean_duration: f64,
        duration: f64,
        seed: u64,
    ) -> Self {
        assert!(mean_duration > 0.0, "mean duration must be positive");
        let mut seen = std::collections::HashSet::new();
        for &(u, v, rate) in &pairs {
            assert!(u < n && v < n && u != v, "bad pair ({u}, {v})");
            assert!(rate.is_finite() && rate >= 0.0, "bad rate {rate}");
            assert!(seen.insert((u.min(v), u.max(v))), "repeated pair ({u}, {v})");
        }
        PairPoissonStream { n, pairs, mean_duration, duration, seed }
    }
}

impl ContactStream for PairPoissonStream {
    fn node_count(&self) -> usize {
        self.n
    }

    fn duration(&self) -> f64 {
        self.duration
    }

    fn for_each_contact(&self, emit: &mut dyn FnMut(ContactEvent)) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        for &(u, v, rate) in &self.pairs {
            if rate <= 0.0 {
                continue;
            }
            let mut t = sample_exp(&mut rng, rate);
            while t < self.duration {
                let d = sample_exp(&mut rng, 1.0 / self.mean_duration);
                let end = (t + d).min(self.duration);
                if end > t {
                    emit(ContactEvent { u, v, start: t, end });
                }
                t = end + sample_exp(&mut rng, rate);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwp_stream_matches_eager_simulate() {
        let m = RandomWaypoint::default_config(20);
        let eager = m.simulate(150.0, 11);
        let streamed = RwpStream::bounded(m, 150.0, 11).collect_trace();
        assert_eq!(eager, streamed);
        let eager_u = m.simulate_unbounded(150.0, 0.1, 0.4, 11);
        let streamed_u = RwpStream::unbounded(m, 150.0, 0.1, 0.4, 11).collect_trace();
        assert_eq!(eager_u, streamed_u);
    }

    #[test]
    fn social_stream_matches_eager_simulate() {
        let pop = Population::random(12, &Population::fig6_radix(), 3);
        let m = SocialContactModel::default_config();
        let eager = m.simulate(&pop, 5_000.0, 9);
        let streamed = SocialStream::new(m, &pop, 5_000.0, 9).collect_trace();
        assert_eq!(eager, streamed);
    }

    #[test]
    fn streaming_discretization_matches_trace_discretization() {
        let m = RandomWaypoint::default_config(15);
        let stream = RwpStream::bounded(m, 120.0, 4);
        let direct = stream.to_time_evolving_graph(1.0);
        let via_trace = stream.collect_trace().to_time_evolving_graph(1.0);
        assert_eq!(direct.contacts(), via_trace.contacts());
        assert_eq!(direct.horizon(), via_trace.horizon());
    }

    #[test]
    fn count_contacts_matches_collected() {
        let m = RandomWaypoint::default_config(15);
        let stream = RwpStream::bounded(m, 120.0, 4);
        assert_eq!(stream.count_contacts(), stream.collect_trace().events().len());
    }

    #[test]
    fn weights_modulate_contact_rates() {
        use crate::social::FeatureProfile;
        // Three identical-profile people: pair rates differ only by the
        // activity weights.
        let profiles = (0..3).map(|_| FeatureProfile { values: vec![0] }).collect();
        let pop = Population::from_profiles(&[2], profiles);
        let m = SocialContactModel::default_config();
        let weighted = SocialStream::new(m, &pop, 400_000.0, 7)
            .with_weights(vec![2.0, 2.0, 0.25])
            .collect_trace();
        let counts = weighted.contact_counts();
        let hot = counts.get(&(0, 1)).copied().unwrap_or(0);
        let cold = counts.get(&(0, 2)).copied().unwrap_or(0);
        // Rate ratio 4·base : 0.5·base = 8; allow wide slack.
        assert!(hot > 3 * cold, "weights must separate rates: {hot} vs {cold}");
        assert!(weighted.is_well_formed());
    }

    #[test]
    fn zero_weight_nodes_do_not_perturb_others() {
        use crate::social::FeatureProfile;
        let profiles: Vec<_> = (0..4).map(|_| FeatureProfile { values: vec![0] }).collect();
        let pop3 = Population::from_profiles(&[2], profiles[..3].to_vec());
        let pop4 = Population::from_profiles(&[2], profiles);
        let m = SocialContactModel::default_config();
        let base = SocialStream::new(m, &pop3, 50_000.0, 5)
            .with_weights(vec![1.0, 1.0, 1.0])
            .collect_trace();
        let padded = SocialStream::new(m, &pop4, 50_000.0, 5)
            .with_weights(vec![1.0, 1.0, 1.0, 0.0])
            .collect_trace();
        assert_eq!(base.events(), padded.events(), "weight-0 node must be invisible");
    }

    #[test]
    fn pair_poisson_stream_is_well_formed_and_seeded() {
        let pairs = vec![(0, 3, 0.01), (1, 2, 0.02), (0, 2, 0.0)];
        let s = PairPoissonStream::new(4, pairs.clone(), 20.0, 10_000.0, 3);
        let t = s.collect_trace();
        assert!(t.is_well_formed());
        assert!(!t.events().is_empty());
        assert!(t.pair_events(0, 2).is_empty(), "zero-rate pair stays silent");
        assert_eq!(t, PairPoissonStream::new(4, pairs, 20.0, 10_000.0, 3).collect_trace());
    }

    #[test]
    #[should_panic(expected = "repeated pair")]
    fn pair_poisson_rejects_duplicates() {
        PairPoissonStream::new(3, vec![(0, 1, 0.1), (1, 0, 0.1)], 10.0, 100.0, 0);
    }
}
