//! Distribution statistics for contact traces (§II-B).
//!
//! "Two measures are often used: contact duration distribution and
//! inter-contact time distribution. The exponential distribution is
//! frequently used due to the simplicity of its mathematics. However, a
//! random waypoint mobility … does not meet the exponential distribution."
//! This module provides the exponential MLE fit and the Kolmogorov–Smirnov
//! distance used to test that claim (experiment E17).

use serde::{Deserialize, Serialize};

/// Result of fitting an exponential distribution to a positive sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentialFit {
    /// MLE rate `λ = 1 / mean`.
    pub rate: f64,
    /// Sample size.
    pub len: usize,
    /// KS distance between the empirical CDF and `1 − exp(−λx)`.
    pub ks: f64,
}

/// Fits an exponential distribution by MLE and reports the KS distance.
/// Returns `None` for empty or non-positive samples.
///
/// # Examples
///
/// ```
/// use csn_mobility::stats::fit_exponential;
///
/// let sample: Vec<f64> = (1..1000).map(|i| -((i as f64) / 1000.0).ln()).collect();
/// let fit = fit_exponential(&sample).unwrap();
/// assert!(fit.ks < 0.05, "true exponential sample fits well");
/// ```
pub fn fit_exponential(sample: &[f64]) -> Option<ExponentialFit> {
    if sample.is_empty() || sample.iter().any(|&x| x.is_nan() || x <= 0.0) {
        return None;
    }
    let mean = sample.iter().sum::<f64>() / sample.len() as f64;
    let rate = 1.0 / mean;
    let ks = ks_exponential(sample, rate);
    Some(ExponentialFit { rate, len: sample.len(), ks })
}

/// KS distance between the empirical CDF of `sample` and Exp(`rate`).
pub fn ks_exponential(sample: &[f64], rate: f64) -> f64 {
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let n = sorted.len() as f64;
    let mut max_d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let model = 1.0 - (-rate * x).exp();
        let emp_hi = (i + 1) as f64 / n;
        let emp_lo = i as f64 / n;
        max_d = max_d.max((emp_hi - model).abs()).max((model - emp_lo).abs());
    }
    max_d
}

/// Empirical complementary CDF evaluated at each of `points`.
pub fn ccdf(sample: &[f64], points: &[f64]) -> Vec<f64> {
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let n = sorted.len() as f64;
    points
        .iter()
        .map(|&p| {
            let idx = sorted.partition_point(|&x| x <= p);
            (sorted.len() - idx) as f64 / n
        })
        .collect()
}

/// Sample mean; 0 for an empty sample.
pub fn mean(sample: &[f64]) -> f64 {
    if sample.is_empty() {
        0.0
    } else {
        sample.iter().sum::<f64>() / sample.len() as f64
    }
}

/// Sample median; 0 for an empty sample.
pub fn median(sample: &[f64]) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    let mut s = sample.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let mid = s.len() / 2;
    if s.len().is_multiple_of(2) {
        (s[mid - 1] + s[mid]) / 2.0
    } else {
        s[mid]
    }
}

/// The coefficient of variation `σ/μ` (1 for exponential; `> 1` indicates a
/// heavier-than-exponential tail). 0 for samples of length `< 2`.
pub fn coefficient_of_variation(sample: &[f64]) -> f64 {
    if sample.len() < 2 {
        return 0.0;
    }
    let m = mean(sample);
    if m == 0.0 {
        return 0.0;
    }
    let var = sample.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / sample.len() as f64;
    var.sqrt() / m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn exp_sample(n: usize, rate: f64, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| -(1.0 - rng.gen::<f64>()).ln() / rate).collect()
    }

    #[test]
    fn exponential_fit_recovers_rate() {
        let s = exp_sample(50_000, 0.25, 3);
        let fit = fit_exponential(&s).unwrap();
        assert!((fit.rate - 0.25).abs() < 0.01, "rate {}", fit.rate);
        assert!(fit.ks < 0.01, "ks {}", fit.ks);
    }

    #[test]
    fn non_exponential_sample_has_large_ks() {
        // Pareto-ish heavy tail.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let s: Vec<f64> =
            (0..20_000).map(|_| (1.0 - rng.gen::<f64>()).powf(-1.0 / 1.5) - 0.9).collect();
        let fit = fit_exponential(&s).unwrap();
        assert!(fit.ks > 0.1, "heavy tail should not fit exponential: ks {}", fit.ks);
        assert!(coefficient_of_variation(&s) > 1.2);
    }

    #[test]
    fn degenerate_samples_return_none() {
        assert!(fit_exponential(&[]).is_none());
        assert!(fit_exponential(&[1.0, -2.0]).is_none());
        assert!(fit_exponential(&[1.0, 0.0]).is_none());
    }

    #[test]
    fn ccdf_monotone_and_bounded() {
        let s = exp_sample(1000, 1.0, 7);
        let pts = vec![0.0, 0.5, 1.0, 2.0, 5.0];
        let c = ccdf(&s, &pts);
        for w in c.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(c[0] <= 1.0 && *c.last().unwrap() >= 0.0);
    }

    #[test]
    fn summary_statistics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        let cv = coefficient_of_variation(&exp_sample(50_000, 2.0, 9));
        assert!((cv - 1.0).abs() < 0.05, "exponential CV ~ 1, got {cv}");
    }
}
