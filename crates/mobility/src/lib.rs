//! # csn-mobility — mobility models and contact traces
//!
//! The paper's dynamic networks (§II-B) abstract node mobility into
//! *contacts* with two macro-level measures: the contact-duration
//! distribution and the inter-contact-time distribution. This crate builds
//! the substrate the paper's experiments need but that real testbeds
//! provided to the author:
//!
//! * [`trace`] — continuous-time contact traces and their discretization
//!   into `csn-temporal` time-evolving graphs.
//! * [`rwp`] — the random-waypoint mobility model, used to check the
//!   paper's claim that RWP does **not** produce exponential inter-contact
//!   times (§II-B).
//! * [`social`] — the social-feature-driven contact model substituting for
//!   the INFOCOM'06 / MIT Reality traces (§III-C): "the frequency of the
//!   personal contacts of two nodes is dependent on their feature distance —
//!   the closer the distance, the higher the contact frequency."
//! * [`stats`] — inter-contact / contact-duration statistics, exponential
//!   fitting, and Kolmogorov–Smirnov distances.
//! * [`stream`] — streaming contact emission ([`stream::ContactStream`])
//!   so million-contact city traces build without materializing every
//!   event; wraps both generators and adds explicit-pair Poisson glue.
//! * [`scenario`] — the composed vehicular/pedestrian city scenario
//!   ([`scenario::CityScenario`]), the substrate of the `--scenario` perf
//!   tier and SCENARIOS.md.
//!
//! # Examples
//!
//! ```
//! use csn_mobility::rwp::RandomWaypoint;
//!
//! let model = RandomWaypoint::default_config(20);
//! let trace = model.simulate(200.0, 7);
//! assert_eq!(trace.node_count(), 20);
//! let eg = trace.to_time_evolving_graph(1.0);
//! assert_eq!(eg.node_count(), 20);
//! ```

pub mod rwp;
pub mod scenario;
pub mod social;
pub mod stats;
pub mod stream;
pub mod trace;

pub use scenario::CityScenario;
pub use stream::{ContactStream, PairPoissonStream, RwpStream, SocialStream};
pub use trace::{ContactEvent, ContactTrace};
