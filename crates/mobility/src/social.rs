//! Social-feature-driven contact model (§III-C, Fig. 6).
//!
//! Substitute for the INFOCOM'06 / MIT Reality Mining traces (see
//! DESIGN.md §3). Each person carries a *social feature profile* — e.g.
//! gender ∈ {male, female}, occupation ∈ {professional, student},
//! nationality ∈ {1, 2, 3} — and the pairwise contact process is Poisson
//! with rate decaying in the *feature distance* (number of differing
//! features): `rate(u, v) = base_rate · exp(−beta · distance(u, v))`.
//!
//! The paper's load-bearing observation — "the closer the distance, the
//! higher the contact frequency" — holds here *by construction*, which is
//! exactly what the substitution needs to preserve; `beta` sweeps probe how
//! strongly the structure depends on it.

use crate::trace::ContactTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A social feature profile: one value per feature dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureProfile {
    /// Feature values; `values[i] < radix[i]` of the owning population.
    pub values: Vec<usize>,
}

impl FeatureProfile {
    /// Feature (Hamming) distance: the number of differing features.
    ///
    /// # Panics
    ///
    /// Panics if the profiles have different dimensionality.
    pub fn distance(&self, other: &FeatureProfile) -> usize {
        assert_eq!(self.values.len(), other.values.len(), "dimension mismatch");
        self.values.iter().zip(&other.values).filter(|(a, b)| a != b).count()
    }
}

/// A population with feature profiles drawn over mixed-radix dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Population {
    radix: Vec<usize>,
    profiles: Vec<FeatureProfile>,
}

impl Population {
    /// Samples `n` people with uniform feature values over `radix`.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is empty or has a zero entry.
    pub fn random(n: usize, radix: &[usize], seed: u64) -> Self {
        assert!(!radix.is_empty() && radix.iter().all(|&r| r > 0), "bad radix");
        let mut rng = StdRng::seed_from_u64(seed);
        let profiles = (0..n)
            .map(|_| FeatureProfile {
                values: radix.iter().map(|&r| rng.gen_range(0..r)).collect(),
            })
            .collect();
        Population { radix: radix.to_vec(), profiles }
    }

    /// A population with explicit profiles.
    ///
    /// # Panics
    ///
    /// Panics if any profile is out of range for `radix`.
    pub fn from_profiles(radix: &[usize], profiles: Vec<FeatureProfile>) -> Self {
        for p in &profiles {
            assert_eq!(p.values.len(), radix.len(), "dimension mismatch");
            for (v, r) in p.values.iter().zip(radix) {
                assert!(v < r, "feature value {v} out of radix {r}");
            }
        }
        Population { radix: radix.to_vec(), profiles }
    }

    /// The paper's Fig. 6 dimensions: gender (2) × occupation (2) ×
    /// nationality (3).
    pub fn fig6_radix() -> Vec<usize> {
        vec![2, 2, 3]
    }

    /// Number of people.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Per-dimension radices.
    pub fn radix(&self) -> &[usize] {
        &self.radix
    }

    /// Profile of person `i`.
    pub fn profile(&self, i: usize) -> &FeatureProfile {
        &self.profiles[i]
    }

    /// Feature distance between two people.
    pub fn distance(&self, i: usize, j: usize) -> usize {
        self.profiles[i].distance(&self.profiles[j])
    }

    /// Groups people by identical profile (the paper's F-space node
    /// communities: "each node corresponds to one community of people with
    /// common features"). Returns `(community index per person, communities)`.
    pub fn communities(&self) -> (Vec<usize>, Vec<Vec<usize>>) {
        use std::collections::HashMap;
        let mut map: HashMap<&FeatureProfile, usize> = HashMap::new();
        let mut communities: Vec<Vec<usize>> = Vec::new();
        let mut index = vec![0usize; self.len()];
        for (i, p) in self.profiles.iter().enumerate() {
            let c = *map.entry(p).or_insert_with(|| {
                communities.push(Vec::new());
                communities.len() - 1
            });
            communities[c].push(i);
            index[i] = c;
        }
        (index, communities)
    }
}

/// Parameters of the feature-distance-driven Poisson contact process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocialContactModel {
    /// Contact rate (contacts/second) between people with identical profiles.
    pub base_rate: f64,
    /// Exponential decay of rate per unit feature distance.
    pub beta: f64,
    /// Mean contact duration (seconds, exponential).
    pub mean_duration: f64,
}

impl SocialContactModel {
    /// INFOCOM-like defaults: same-profile pairs meet about every 200 s,
    /// each feature difference halves the rate (`beta = ln 2`), contacts
    /// last 30 s on average.
    pub fn default_config() -> Self {
        SocialContactModel {
            base_rate: 1.0 / 200.0,
            beta: std::f64::consts::LN_2,
            mean_duration: 30.0,
        }
    }

    /// Contact rate between people at feature distance `d`.
    pub fn rate(&self, d: usize) -> f64 {
        self.base_rate * (-self.beta * d as f64).exp()
    }

    /// Generates a contact trace for `population` over `duration` seconds:
    /// each pair's contact starts are Poisson(`rate(distance)`), durations
    /// exponential(`mean_duration`) truncated at the horizon.
    ///
    /// Thin wrapper over [`crate::stream::SocialStream`] (byte-identical
    /// trace); use the stream directly to avoid materializing large traces
    /// or to add per-node activity weights.
    pub fn simulate(&self, population: &Population, duration: f64, seed: u64) -> ContactTrace {
        use crate::stream::ContactStream;
        crate::stream::SocialStream::new(*self, population, duration, seed).collect_trace()
    }
}

/// Exponential sample with the given rate via inverse CDF.
pub(crate) fn sample_exp(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.gen::<f64>();
    -(1.0 - u).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_distance() {
        let a = FeatureProfile { values: vec![0, 1, 2] };
        let b = FeatureProfile { values: vec![0, 0, 1] };
        assert_eq!(a.distance(&b), 2);
        assert_eq!(a.distance(&a), 0);
    }

    #[test]
    fn population_validates_profiles() {
        let p = Population::random(50, &Population::fig6_radix(), 1);
        assert_eq!(p.len(), 50);
        for i in 0..50 {
            for (v, r) in p.profile(i).values.iter().zip(p.radix()) {
                assert!(v < r);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of radix")]
    fn bad_profile_rejected() {
        Population::from_profiles(&[2, 2], vec![FeatureProfile { values: vec![0, 5] }]);
    }

    #[test]
    fn communities_group_identical_profiles() {
        let profiles = vec![
            FeatureProfile { values: vec![0, 0] },
            FeatureProfile { values: vec![0, 1] },
            FeatureProfile { values: vec![0, 0] },
        ];
        let p = Population::from_profiles(&[2, 2], profiles);
        let (idx, comms) = p.communities();
        assert_eq!(comms.len(), 2);
        assert_eq!(idx[0], idx[2]);
        assert_ne!(idx[0], idx[1]);
        assert_eq!(comms[idx[0]], vec![0, 2]);
    }

    #[test]
    fn closer_profiles_contact_more_often() {
        // The paper's core claim, which the generator must enforce.
        let radix = [2usize, 2, 3];
        // Three people: 0 and 1 identical, 2 differs from 0 in all features.
        let profiles = vec![
            FeatureProfile { values: vec![0, 0, 0] },
            FeatureProfile { values: vec![0, 0, 0] },
            FeatureProfile { values: vec![1, 1, 1] },
        ];
        let pop = Population::from_profiles(&radix, profiles);
        let model = SocialContactModel::default_config();
        let trace = model.simulate(&pop, 500_000.0, 42);
        let counts = trace.contact_counts();
        let close = counts.get(&(0, 1)).copied().unwrap_or(0);
        let far = counts.get(&(0, 2)).copied().unwrap_or(0);
        assert!(close > 2 * far, "identical profiles must meet much more often: {close} vs {far}");
        // Rate ratio should be ~ exp(beta * 3) = 8.
        let ratio = close as f64 / far.max(1) as f64;
        assert!((4.0..16.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rate_decays_exponentially() {
        let m = SocialContactModel::default_config();
        assert!((m.rate(1) / m.rate(0) - 0.5).abs() < 1e-12);
        assert!((m.rate(3) / m.rate(0) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn simulation_is_seeded() {
        let pop = Population::random(10, &[2, 2], 7);
        let m = SocialContactModel::default_config();
        assert_eq!(m.simulate(&pop, 10_000.0, 5), m.simulate(&pop, 10_000.0, 5));
        assert_ne!(m.simulate(&pop, 10_000.0, 5), m.simulate(&pop, 10_000.0, 6));
    }

    #[test]
    fn contacts_do_not_overlap_per_pair() {
        let pop = Population::random(6, &[2, 3], 3);
        let m = SocialContactModel { base_rate: 0.01, beta: 0.5, mean_duration: 50.0 };
        let trace = m.simulate(&pop, 50_000.0, 8);
        for u in 0..6 {
            for v in (u + 1)..6 {
                let evs = trace.pair_events(u, v);
                for w in evs.windows(2) {
                    assert!(w[0].end <= w[1].start, "overlapping contacts for ({u},{v})");
                }
            }
        }
    }
}
