//! Random-waypoint (RWP) mobility (§II-B).
//!
//! Each node repeatedly picks a uniform destination in the unit square,
//! travels there at a uniform-random speed, optionally pauses, and repeats.
//! Contacts arise whenever two nodes come within the radio range.
//!
//! The paper: "a random waypoint mobility without a boundary does not meet
//! the exponential distribution for either contact duration or inter-contact
//! time" — experiment E17 measures exactly this with [`crate::stats`].
//!
//! # Performance
//!
//! Contact detection supports two interchangeable back ends gated bitwise
//! against each other (see [`ContactDetection`]): the O(n²) all-pairs scan
//! and a uniform-cell grid index in the [`csn_graph::stream::GeometricStream`]
//! idiom — cells at least one radio range wide, so every in-range pair lies
//! in a 3×3 cell neighborhood. Per step the grid costs O(n + open + near)
//! instead of O(n²): the open-contact set is swept for closures in
//! canonical pair order and only spatially-near pairs are tested for
//! openings. City-scale traces (n in the thousands, millions of contacts)
//! are built through [`crate::stream::RwpStream`] without materializing
//! the event vector; throughput is recorded in `BENCH_scenario.json` (see
//! SCENARIOS.md).

use crate::trace::{ContactEvent, ContactTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// How `simulate`/`simulate_unbounded` find in-range pairs each step.
///
/// Both back ends produce *byte-identical* traces: they test the identical
/// floating-point predicate on the identical post-advance positions, emit
/// closures in canonical pair order, and [`ContactTrace::new`]'s
/// `(start, u, v)` sort canonicalizes whatever discovery order remains.
/// The mobility proptest suite and the `--scenario` perf gate assert the
/// equality on small n every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContactDetection {
    /// Grid for `n >= 64`, naive below (the grid's constant factor only
    /// pays off once the quadratic term dominates).
    #[default]
    Auto,
    /// The O(n²) all-pairs reference scan.
    Naive,
    /// The uniform-cell grid index.
    Grid,
}

impl ContactDetection {
    /// Nodes at which [`ContactDetection::Auto`] switches to the grid.
    pub const AUTO_GRID_THRESHOLD: usize = 64;

    fn use_grid(self, n: usize) -> bool {
        match self {
            ContactDetection::Auto => n >= Self::AUTO_GRID_THRESHOLD,
            ContactDetection::Naive => false,
            ContactDetection::Grid => true,
        }
    }
}

/// Configuration of a random-waypoint simulation on the unit square.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWaypoint {
    /// Number of nodes.
    pub n: usize,
    /// Radio range (contact iff distance `<=` range).
    pub range: f64,
    /// Minimum travel speed (units/second); must be `> 0`.
    pub v_min: f64,
    /// Maximum travel speed.
    pub v_max: f64,
    /// Maximum pause at each waypoint (uniform in `[0, pause_max]`).
    pub pause_max: f64,
    /// Simulation time step (seconds).
    pub dt: f64,
}

impl RandomWaypoint {
    /// A reasonable default: range 0.1, speeds 0.01–0.05, pauses up to 2 s,
    /// 0.5 s steps.
    pub fn default_config(n: usize) -> Self {
        RandomWaypoint { n, range: 0.1, v_min: 0.01, v_max: 0.05, pause_max: 2.0, dt: 0.5 }
    }

    pub(crate) fn validate(&self) {
        assert!(self.n > 0 && self.range > 0.0 && self.dt > 0.0, "bad parameters");
        assert!(0.0 < self.v_min && self.v_min <= self.v_max, "bad speed range");
    }

    /// Simulates `duration` seconds and returns the contact trace.
    ///
    /// # Panics
    ///
    /// Panics if parameters are non-positive or `v_min > v_max`.
    pub fn simulate(&self, duration: f64, seed: u64) -> ContactTrace {
        self.simulate_with(duration, seed, ContactDetection::Auto)
    }

    /// [`RandomWaypoint::simulate`] with an explicit contact-detection back
    /// end (the bitwise grid-vs-naive gates use this).
    ///
    /// # Panics
    ///
    /// Panics if parameters are non-positive or `v_min > v_max`.
    pub fn simulate_with(
        &self,
        duration: f64,
        seed: u64,
        detection: ContactDetection,
    ) -> ContactTrace {
        self.validate();
        let mut events = Vec::new();
        run_walk(self, Walk::Bounded, duration, seed, detection, &mut |e| events.push(e));
        ContactTrace::new(self.n, duration, events)
    }

    /// Random waypoint **without a boundary** (§II-B): each waypoint is a
    /// uniform-direction trip of length `trip_min..trip_max` from the
    /// current position, so nodes diffuse over the open plane. The paper's
    /// claim — reproduced by experiment E17 — is that this variant does
    /// *not* produce exponential contact-duration or inter-contact-time
    /// distributions (pairs drift apart, stretching the tail).
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters or `trip_min > trip_max`.
    pub fn simulate_unbounded(
        &self,
        duration: f64,
        trip_min: f64,
        trip_max: f64,
        seed: u64,
    ) -> ContactTrace {
        self.simulate_unbounded_with(duration, trip_min, trip_max, seed, ContactDetection::Auto)
    }

    /// [`RandomWaypoint::simulate_unbounded`] with an explicit
    /// contact-detection back end.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters or `trip_min > trip_max`.
    pub fn simulate_unbounded_with(
        &self,
        duration: f64,
        trip_min: f64,
        trip_max: f64,
        seed: u64,
        detection: ContactDetection,
    ) -> ContactTrace {
        self.validate();
        assert!(0.0 < trip_min && trip_min <= trip_max, "bad trip range");
        let mut events = Vec::new();
        run_walk(
            self,
            Walk::Unbounded { trip_min, trip_max },
            duration,
            seed,
            detection,
            &mut |e| events.push(e),
        );
        ContactTrace::new(self.n, duration, events)
    }
}

/// Which waypoint law the walk follows; both share one movement integrator
/// ([`NodeState::advance`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Walk {
    /// Waypoints uniform in the unit square (positions stay in `[0, 1]²`).
    Bounded,
    /// Waypoints at a uniform angle and `trip_min..=trip_max` distance from
    /// the current position (positions diffuse over the open plane).
    Unbounded {
        /// Minimum trip length.
        trip_min: f64,
        /// Maximum trip length.
        trip_max: f64,
    },
}

impl Walk {
    /// Draws the next waypoint. Exactly two RNG draws in either variant.
    fn pick_dest(&self, pos: (f64, f64), rng: &mut StdRng) -> (f64, f64) {
        match *self {
            Walk::Bounded => (rng.gen(), rng.gen()),
            Walk::Unbounded { trip_min, trip_max } => {
                let theta = rng.gen::<f64>() * std::f64::consts::TAU;
                let len = rng.gen_range(trip_min..=trip_max);
                (pos.0 + len * theta.cos(), pos.1 + len * theta.sin())
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct NodeState {
    pos: (f64, f64),
    dest: (f64, f64),
    speed: f64,
    pause_left: f64,
}

impl NodeState {
    /// One `dt` of movement under `model`'s speeds and pauses: pause if
    /// pausing, otherwise move toward the destination, re-drawing waypoint,
    /// speed, and pause on arrival via `walk`. Both the bounded and the
    /// unbounded simulation step through this single integrator.
    fn advance(&mut self, model: &RandomWaypoint, walk: Walk, rng: &mut StdRng) {
        if self.pause_left > 0.0 {
            self.pause_left -= model.dt;
            return;
        }
        let dx = self.dest.0 - self.pos.0;
        let dy = self.dest.1 - self.pos.1;
        let d = (dx * dx + dy * dy).sqrt();
        let travel = self.speed * model.dt;
        if d <= travel {
            // Arrive; choose the next waypoint, speed, and pause.
            self.pos = self.dest;
            self.dest = walk.pick_dest(self.pos, rng);
            self.speed = rng.gen_range(model.v_min..=model.v_max);
            self.pause_left = rng.gen::<f64>() * model.pause_max;
        } else {
            self.pos.0 += dx / d * travel;
            self.pos.1 += dy / d * travel;
        }
    }
}

/// The in-range predicate. One shared function so the naive scan and the
/// grid agree bitwise: `(-dx)² == dx²` exactly in IEEE 754, so which
/// endpoint is subtracted from which cannot matter.
#[inline]
fn within_range(a: (f64, f64), b: (f64, f64), range: f64) -> bool {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    (dx * dx + dy * dy).sqrt() <= range
}

/// Runs a random-waypoint walk, streaming contact events to `emit`.
///
/// Timestamps are stamped *post-advance*: step `k` moves every node from
/// time `k·dt` to `(k+1)·dt` and then scans positions, so observed
/// openings/closures carry `now = (k+1)·dt` — the time of the positions
/// being scanned. (The pre-fix code stamped `k·dt`, lagging every contact
/// boundary one `dt` behind the motion.) The final step's stamp and any
/// contacts still open at the end are clamped to `duration`, so every event
/// lies inside `[0, duration]` even when `duration / dt` is fractional.
///
/// Open contacts live in a `BTreeMap` keyed by the canonical `(u, v)` pair
/// (`u < v`), so closure sweeps and the end-of-trace drain emit in pair
/// order — deterministic across processes, unlike a `HashMap` drain.
pub(crate) fn run_walk(
    model: &RandomWaypoint,
    walk: Walk,
    duration: f64,
    seed: u64,
    detection: ContactDetection,
    emit: &mut dyn FnMut(ContactEvent),
) {
    let n = model.n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state: Vec<NodeState> = (0..n)
        .map(|_| {
            let pos = (rng.gen::<f64>(), rng.gen::<f64>());
            NodeState {
                pos,
                dest: walk.pick_dest(pos, &mut rng),
                speed: rng.gen_range(model.v_min..=model.v_max),
                pause_left: 0.0,
            }
        })
        .collect();
    let steps = (duration / model.dt).ceil() as usize;
    let mut open: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut grid = if detection.use_grid(n) {
        Some(ContactGrid::new(n, model.range, matches!(walk, Walk::Bounded)))
    } else {
        None
    };
    let mut closing: Vec<(usize, usize)> = Vec::new();
    for step in 0..steps {
        for s in &mut state {
            s.advance(model, walk, &mut rng);
        }
        // The positions scanned below are the time-(step+1)·dt positions;
        // stamp them as such, clamped to the horizon on the final
        // (possibly fractional) step.
        let now = (((step + 1) as f64) * model.dt).min(duration);
        match &mut grid {
            Some(grid) => {
                // Close pass: sweep open contacts (ascending pair order)
                // for pairs that left range — the 3×3 neighborhood scan
                // below cannot see pairs that moved far apart.
                closing.clear();
                for (&key, _) in open.iter() {
                    if !within_range(state[key.0].pos, state[key.1].pos, model.range) {
                        closing.push(key);
                    }
                }
                for &key in &closing {
                    let start = open.remove(&key).expect("swept from open");
                    if now > start {
                        emit(ContactEvent { u: key.0, v: key.1, start, end: now });
                    }
                }
                // Open pass: only spatially-near pairs can newly be in
                // range.
                grid.rebuild(&state);
                grid.for_each_near_pair(&state, model.range, &mut |u, v| {
                    open.entry((u, v)).or_insert(now);
                });
            }
            None => {
                for u in 0..n {
                    for v in (u + 1)..n {
                        let within = within_range(state[u].pos, state[v].pos, model.range);
                        let key = (u, v);
                        match (within, open.contains_key(&key)) {
                            (true, false) => {
                                open.insert(key, now);
                            }
                            (false, true) => {
                                let start = open.remove(&key).expect("checked");
                                if now > start {
                                    emit(ContactEvent { u, v, start, end: now });
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }
    // Close contacts still open at the end of the simulation, clamped to
    // the trace horizon (steps·dt overshoots `duration` whenever
    // duration/dt is fractional). BTreeMap drains in canonical pair order.
    for ((u, v), start) in open {
        if duration > start {
            emit(ContactEvent { u, v, start, end: duration });
        }
    }
}

/// Uniform-cell spatial index over current node positions.
///
/// Cells are at least one radio range wide, so every in-range pair lies in
/// a 3×3 cell neighborhood of either endpoint. Two layouts share the
/// interface:
///
/// * **dense** (bounded walks, positions in `[0, 1]²`) — counting sort
///   into a `side × side` row grid, rebuilt allocation-free each step in
///   the [`csn_graph::stream::GeometricStream`] idiom;
/// * **sparse** (unbounded walks, positions diffuse arbitrarily far) —
///   integer cell coordinates into a rebuilt hash map of buckets, since a
///   dense grid over the walk's growing bounding box would outgrow O(n).
struct ContactGrid {
    /// Dense layout: cells per axis (0 = sparse layout).
    side: usize,
    cell_width: f64,
    /// Dense: node ids sorted by cell, rows delimited by `cell_start`.
    order: Vec<u32>,
    cell_start: Vec<u32>,
    counts: Vec<u32>,
    /// Sparse: bucket per occupied integer cell.
    buckets: std::collections::HashMap<(i64, i64), Vec<u32>>,
}

impl ContactGrid {
    fn new(n: usize, range: f64, bounded: bool) -> Self {
        if bounded {
            // Width >= range for 3×3 correctness; cap the cell count at
            // O(n) so the per-step counting sort stays linear.
            let max_side = ((n as f64).sqrt().ceil() as usize + 1).max(1);
            let side = ((1.0 / range).floor() as usize).clamp(1, max_side);
            ContactGrid {
                side,
                cell_width: 1.0 / side as f64,
                order: vec![0; n],
                cell_start: Vec::new(),
                counts: vec![0; side * side + 1],
                buckets: std::collections::HashMap::new(),
            }
        } else {
            ContactGrid {
                side: 0,
                cell_width: range,
                order: Vec::new(),
                cell_start: Vec::new(),
                counts: Vec::new(),
                buckets: std::collections::HashMap::new(),
            }
        }
    }

    fn dense_cell(&self, pos: (f64, f64)) -> usize {
        let side = self.side;
        let cx = ((pos.0 * side as f64) as usize).min(side - 1);
        let cy = ((pos.1 * side as f64) as usize).min(side - 1);
        cy * side + cx
    }

    fn sparse_cell(&self, pos: (f64, f64)) -> (i64, i64) {
        ((pos.0 / self.cell_width).floor() as i64, (pos.1 / self.cell_width).floor() as i64)
    }

    fn rebuild(&mut self, state: &[NodeState]) {
        if self.side > 0 {
            self.counts.iter_mut().for_each(|c| *c = 0);
            for s in state {
                let c = self.dense_cell(s.pos);
                self.counts[c + 1] += 1;
            }
            for i in 1..self.counts.len() {
                self.counts[i] += self.counts[i - 1];
            }
            self.cell_start.clone_from(&self.counts);
            let mut cursor = std::mem::take(&mut self.counts);
            for (i, s) in state.iter().enumerate() {
                let c = self.dense_cell(s.pos);
                self.order[cursor[c] as usize] = i as u32;
                cursor[c] += 1;
            }
            self.counts = cursor;
        } else {
            // Rebuild buckets, reusing allocations where cells repeat.
            self.buckets.values_mut().for_each(Vec::clear);
            for (i, s) in state.iter().enumerate() {
                self.buckets.entry(self.sparse_cell(s.pos)).or_default().push(i as u32);
            }
            self.buckets.retain(|_, b| !b.is_empty());
        }
    }

    /// Visits every unordered pair `(u, v)`, `u < v`, whose distance is
    /// within `range`, each exactly once. Visit order is
    /// grid-layout-dependent; callers needing canonical order sort (the
    /// open-contact `BTreeMap` and [`ContactTrace::new`] both do).
    fn for_each_near_pair(
        &self,
        state: &[NodeState],
        range: f64,
        visit: &mut dyn FnMut(usize, usize),
    ) {
        if self.side > 0 {
            let side = self.side;
            for u in 0..state.len() {
                let pos = state[u].pos;
                let cx = ((pos.0 * side as f64) as usize).min(side - 1);
                let cy = ((pos.1 * side as f64) as usize).min(side - 1);
                for ny in cy.saturating_sub(1)..=(cy + 1).min(side - 1) {
                    for nx in cx.saturating_sub(1)..=(cx + 1).min(side - 1) {
                        let c = ny * side + nx;
                        for i in self.cell_start[c]..self.cell_start[c + 1] {
                            let v = self.order[i as usize] as usize;
                            // Each pair once, from the lower id.
                            if v > u && within_range(state[u].pos, state[v].pos, range) {
                                visit(u, v);
                            }
                        }
                    }
                }
            }
        } else {
            for u in 0..state.len() {
                let (cx, cy) = self.sparse_cell(state[u].pos);
                for ny in (cy - 1)..=(cy + 1) {
                    for nx in (cx - 1)..=(cx + 1) {
                        let Some(bucket) = self.buckets.get(&(nx, ny)) else { continue };
                        for &v in bucket {
                            let v = v as usize;
                            if v > u && within_range(state[u].pos, state[v].pos, range) {
                                visit(u, v);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_is_seeded_and_produces_contacts() {
        let m = RandomWaypoint::default_config(15);
        let t1 = m.simulate(300.0, 3);
        let t2 = m.simulate(300.0, 3);
        assert_eq!(t1, t2, "same seed, same trace");
        assert!(!t1.events().is_empty(), "15 nodes over 300 s must meet");
        let t3 = m.simulate(300.0, 4);
        assert_ne!(t1, t3);
    }

    #[test]
    fn contacts_are_well_formed() {
        // Fractional duration / dt: 200.0 / 0.5 is exact, so force a
        // fractional horizon explicitly to exercise the end clamp.
        let m = RandomWaypoint::default_config(10);
        for duration in [200.0, 199.75] {
            let t = m.simulate(duration, 9);
            assert!(t.is_well_formed());
            for e in t.events() {
                assert!(e.duration() > 0.0);
                assert!(e.start >= 0.0 && e.end <= duration, "event exceeds horizon: {e:?}");
                assert!(e.u < 10 && e.v < 10 && e.u != e.v);
            }
        }
    }

    #[test]
    fn unbounded_contacts_are_well_formed() {
        let m = RandomWaypoint::default_config(10);
        let t = m.simulate_unbounded(199.75, 0.1, 0.5, 9);
        assert!(t.is_well_formed());
        for e in t.events() {
            assert!(e.end <= 199.75, "event exceeds horizon: {e:?}");
        }
    }

    #[test]
    fn timestamps_are_post_advance() {
        // With the post-advance stamp, the earliest possible contact
        // boundary is dt (positions at t = 0 are never scanned), and every
        // boundary is a multiple of dt except the duration clamp.
        let m = RandomWaypoint::default_config(12);
        let t = m.simulate(150.0, 21);
        assert!(!t.events().is_empty());
        for e in t.events() {
            assert!(e.start >= m.dt - 1e-12, "start {} predates first step", e.start);
            let steps = e.start / m.dt;
            assert!((steps - steps.round()).abs() < 1e-9, "start {} off the grid", e.start);
        }
    }

    #[test]
    fn grid_matches_naive_bitwise() {
        for seed in 0..4 {
            let m = RandomWaypoint::default_config(25);
            let naive = m.simulate_with(150.0, seed, ContactDetection::Naive);
            let grid = m.simulate_with(150.0, seed, ContactDetection::Grid);
            assert_eq!(naive, grid, "seed {seed}: grid diverged from all-pairs scan");
            let naive_u = m.simulate_unbounded_with(150.0, 0.1, 0.4, seed, ContactDetection::Naive);
            let grid_u = m.simulate_unbounded_with(150.0, 0.1, 0.4, seed, ContactDetection::Grid);
            assert_eq!(naive_u, grid_u, "seed {seed}: sparse grid diverged (unbounded)");
        }
    }

    #[test]
    fn larger_range_means_more_contact_time() {
        let mut small = RandomWaypoint::default_config(10);
        small.range = 0.05;
        let mut large = small;
        large.range = 0.3;
        let ts = small.simulate(200.0, 5);
        let tl = large.simulate(200.0, 5);
        let sum = |t: &crate::trace::ContactTrace| t.contact_durations().iter().sum::<f64>();
        assert!(sum(&tl) > sum(&ts), "{} vs {}", sum(&tl), sum(&ts));
    }

    #[test]
    #[should_panic(expected = "bad speed range")]
    fn zero_speed_rejected() {
        let mut m = RandomWaypoint::default_config(5);
        m.v_min = 0.0;
        m.simulate(10.0, 0);
    }
}
