//! Random-waypoint (RWP) mobility (§II-B).
//!
//! Each node repeatedly picks a uniform destination in the unit square,
//! travels there at a uniform-random speed, optionally pauses, and repeats.
//! Contacts arise whenever two nodes come within the radio range.
//!
//! The paper: "a random waypoint mobility without a boundary does not meet
//! the exponential distribution for either contact duration or inter-contact
//! time" — experiment E17 measures exactly this with [`crate::stats`].

use crate::trace::{ContactEvent, ContactTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a random-waypoint simulation on the unit square.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWaypoint {
    /// Number of nodes.
    pub n: usize,
    /// Radio range (contact iff distance `<=` range).
    pub range: f64,
    /// Minimum travel speed (units/second); must be `> 0`.
    pub v_min: f64,
    /// Maximum travel speed.
    pub v_max: f64,
    /// Maximum pause at each waypoint (uniform in `[0, pause_max]`).
    pub pause_max: f64,
    /// Simulation time step (seconds).
    pub dt: f64,
}

impl RandomWaypoint {
    /// A reasonable default: range 0.1, speeds 0.01–0.05, pauses up to 2 s,
    /// 0.5 s steps.
    pub fn default_config(n: usize) -> Self {
        RandomWaypoint { n, range: 0.1, v_min: 0.01, v_max: 0.05, pause_max: 2.0, dt: 0.5 }
    }

    /// Simulates `duration` seconds and returns the contact trace.
    ///
    /// # Panics
    ///
    /// Panics if parameters are non-positive or `v_min > v_max`.
    pub fn simulate(&self, duration: f64, seed: u64) -> ContactTrace {
        assert!(self.n > 0 && self.range > 0.0 && self.dt > 0.0, "bad parameters");
        assert!(0.0 < self.v_min && self.v_min <= self.v_max, "bad speed range");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state: Vec<NodeState> = (0..self.n)
            .map(|_| NodeState {
                pos: (rng.gen(), rng.gen()),
                dest: (rng.gen(), rng.gen()),
                speed: rng.gen_range(self.v_min..=self.v_max),
                pause_left: 0.0,
            })
            .collect();
        let steps = (duration / self.dt).ceil() as usize;
        // Track open contacts per pair.
        let mut open: std::collections::HashMap<(usize, usize), f64> =
            std::collections::HashMap::new();
        let mut events = Vec::new();
        for step in 0..steps {
            let now = step as f64 * self.dt;
            for s in &mut state {
                s.advance(self.dt, self.v_min, self.v_max, self.pause_max, &mut rng);
            }
            for u in 0..self.n {
                for v in (u + 1)..self.n {
                    let dx = state[u].pos.0 - state[v].pos.0;
                    let dy = state[u].pos.1 - state[v].pos.1;
                    let within = (dx * dx + dy * dy).sqrt() <= self.range;
                    let key = (u, v);
                    match (within, open.contains_key(&key)) {
                        (true, false) => {
                            open.insert(key, now);
                        }
                        (false, true) => {
                            let start = open.remove(&key).expect("checked");
                            events.push(ContactEvent { u, v, start, end: now });
                        }
                        _ => {}
                    }
                }
            }
        }
        // Close contacts still open at the end of the simulation.
        for ((u, v), start) in open {
            let end = steps as f64 * self.dt;
            if end > start {
                events.push(ContactEvent { u, v, start, end });
            }
        }
        ContactTrace::new(self.n, duration, events)
    }
}

impl RandomWaypoint {
    /// Random waypoint **without a boundary** (§II-B): each waypoint is a
    /// uniform-direction trip of length `trip_min..trip_max` from the
    /// current position, so nodes diffuse over the open plane. The paper's
    /// claim — reproduced by experiment E17 — is that this variant does
    /// *not* produce exponential contact-duration or inter-contact-time
    /// distributions (pairs drift apart, stretching the tail).
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters or `trip_min > trip_max`.
    pub fn simulate_unbounded(
        &self,
        duration: f64,
        trip_min: f64,
        trip_max: f64,
        seed: u64,
    ) -> ContactTrace {
        assert!(self.n > 0 && self.range > 0.0 && self.dt > 0.0, "bad parameters");
        assert!(0.0 < self.v_min && self.v_min <= self.v_max, "bad speed range");
        assert!(0.0 < trip_min && trip_min <= trip_max, "bad trip range");
        let mut rng = StdRng::seed_from_u64(seed);
        let new_dest = |pos: (f64, f64), rng: &mut StdRng| {
            let theta = rng.gen::<f64>() * std::f64::consts::TAU;
            let len = rng.gen_range(trip_min..=trip_max);
            (pos.0 + len * theta.cos(), pos.1 + len * theta.sin())
        };
        let mut state: Vec<NodeState> = (0..self.n)
            .map(|_| {
                let pos = (rng.gen::<f64>(), rng.gen::<f64>());
                NodeState {
                    pos,
                    dest: new_dest(pos, &mut rng),
                    speed: rng.gen_range(self.v_min..=self.v_max),
                    pause_left: 0.0,
                }
            })
            .collect();
        let steps = (duration / self.dt).ceil() as usize;
        let mut open: std::collections::HashMap<(usize, usize), f64> =
            std::collections::HashMap::new();
        let mut events = Vec::new();
        for step in 0..steps {
            let now = step as f64 * self.dt;
            for s in &mut state {
                if s.pause_left > 0.0 {
                    s.pause_left -= self.dt;
                    continue;
                }
                let dx = s.dest.0 - s.pos.0;
                let dy = s.dest.1 - s.pos.1;
                let d = (dx * dx + dy * dy).sqrt();
                let travel = s.speed * self.dt;
                if d <= travel {
                    s.pos = s.dest;
                    s.dest = new_dest(s.pos, &mut rng);
                    s.speed = rng.gen_range(self.v_min..=self.v_max);
                    s.pause_left = rng.gen::<f64>() * self.pause_max;
                } else {
                    s.pos.0 += dx / d * travel;
                    s.pos.1 += dy / d * travel;
                }
            }
            for u in 0..self.n {
                for v in (u + 1)..self.n {
                    let dx = state[u].pos.0 - state[v].pos.0;
                    let dy = state[u].pos.1 - state[v].pos.1;
                    let within = (dx * dx + dy * dy).sqrt() <= self.range;
                    let key = (u, v);
                    match (within, open.contains_key(&key)) {
                        (true, false) => {
                            open.insert(key, now);
                        }
                        (false, true) => {
                            let start = open.remove(&key).expect("checked");
                            events.push(ContactEvent { u, v, start, end: now });
                        }
                        _ => {}
                    }
                }
            }
        }
        for ((u, v), start) in open {
            let end = steps as f64 * self.dt;
            if end > start {
                events.push(ContactEvent { u, v, start, end });
            }
        }
        ContactTrace::new(self.n, duration, events)
    }
}

#[derive(Debug, Clone, Copy)]
struct NodeState {
    pos: (f64, f64),
    dest: (f64, f64),
    speed: f64,
    pause_left: f64,
}

impl NodeState {
    fn advance(&mut self, dt: f64, v_min: f64, v_max: f64, pause_max: f64, rng: &mut StdRng) {
        if self.pause_left > 0.0 {
            self.pause_left -= dt;
            return;
        }
        let dx = self.dest.0 - self.pos.0;
        let dy = self.dest.1 - self.pos.1;
        let d = (dx * dx + dy * dy).sqrt();
        let travel = self.speed * dt;
        if d <= travel {
            // Arrive; choose the next waypoint, speed, and pause.
            self.pos = self.dest;
            self.dest = (rng.gen(), rng.gen());
            self.speed = rng.gen_range(v_min..=v_max);
            self.pause_left = rng.gen::<f64>() * pause_max;
        } else {
            self.pos.0 += dx / d * travel;
            self.pos.1 += dy / d * travel;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_is_seeded_and_produces_contacts() {
        let m = RandomWaypoint::default_config(15);
        let t1 = m.simulate(300.0, 3);
        let t2 = m.simulate(300.0, 3);
        assert_eq!(t1, t2, "same seed, same trace");
        assert!(!t1.events().is_empty(), "15 nodes over 300 s must meet");
        let t3 = m.simulate(300.0, 4);
        assert_ne!(t1, t3);
    }

    #[test]
    fn contacts_are_well_formed() {
        let m = RandomWaypoint::default_config(10);
        let t = m.simulate(200.0, 9);
        for e in t.events() {
            assert!(e.duration() > 0.0);
            assert!(e.start >= 0.0 && e.end <= 200.0 + m.dt);
            assert!(e.u < 10 && e.v < 10 && e.u != e.v);
        }
    }

    #[test]
    fn larger_range_means_more_contact_time() {
        let mut small = RandomWaypoint::default_config(10);
        small.range = 0.05;
        let mut large = small;
        large.range = 0.3;
        let ts = small.simulate(200.0, 5);
        let tl = large.simulate(200.0, 5);
        let sum = |t: &crate::trace::ContactTrace| t.contact_durations().iter().sum::<f64>();
        assert!(sum(&tl) > sum(&ts), "{} vs {}", sum(&tl), sum(&ts));
    }

    #[test]
    #[should_panic(expected = "bad speed range")]
    fn zero_speed_rejected() {
        let mut m = RandomWaypoint::default_config(5);
        m.v_min = 0.0;
        m.simulate(10.0, 0);
    }
}
