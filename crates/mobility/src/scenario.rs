//! The city-scale scenario: a heterogeneous vehicular/pedestrian trace.
//!
//! Composes the crate's generators into one [`ContactStream`] over a
//! shared node-id space (SCENARIOS.md documents the memory model and the
//! sizing methodology):
//!
//! * **vehicles** `[0, vehicles)` — grid-accelerated random-waypoint
//!   motion in the unit square (radio contacts);
//! * **pedestrians** `[vehicles, vehicles + pedestrians)` — the
//!   social-feature Poisson process, optionally with per-node activity
//!   weights (attribute-driven rates per Orman et al., arXiv:1406.6597);
//! * **boardings** — each pedestrian rides a few fixed vehicles, modeled
//!   as a Poisson pair process between the two populations.
//!
//! The three layers touch *disjoint pair sets* (vehicle–vehicle,
//! pedestrian–pedestrian, pedestrian–vehicle), so the composed trace
//! inherits per-pair non-overlap from each layer and is well-formed by
//! construction — asserted for every generated trace by the mobility
//! proptest suite.

use crate::rwp::{ContactDetection, RandomWaypoint};
use crate::social::{Population, SocialContactModel};
use crate::stream::{ContactStream, PairPoissonStream, RwpStream, SocialStream};
use crate::trace::ContactEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seed offsets deriving per-layer RNG streams from the scenario seed.
const SOCIAL_SEED_OFFSET: u64 = 0x9e37_79b9_7f4a_7c15;
const BRIDGE_SEED_OFFSET: u64 = 0x2545_f491_4f6c_dd1d;

/// Configuration and [`ContactStream`] of the composed city trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CityScenario {
    /// Vehicle mobility (its `n` is the vehicle count).
    pub rwp: RandomWaypoint,
    /// Contact-detection back end for the vehicle layer.
    pub detection: ContactDetection,
    /// Pedestrian social profiles.
    pub population: Population,
    /// Pedestrian contact process.
    pub social: SocialContactModel,
    /// Optional per-pedestrian activity weights (see
    /// [`SocialStream::with_weights`]).
    pub weights: Option<Vec<f64>>,
    /// Vehicles each pedestrian boards.
    pub boardings_per_pedestrian: usize,
    /// Poisson rate of one pedestrian–vehicle boarding pair.
    pub boarding_rate: f64,
    /// Mean boarding duration (seconds, exponential).
    pub boarding_mean_duration: f64,
    /// Trace horizon (seconds).
    pub duration: f64,
    /// Master seed; per-layer seeds are derived from it.
    pub seed: u64,
}

impl CityScenario {
    /// A city with `vehicles` RWP nodes and `pedestrians` social nodes
    /// over `duration` seconds. Defaults: default RWP config, Fig. 6
    /// social radix and INFOCOM-like rates, 2 boardings per pedestrian at
    /// one boarding per ~10 min lasting ~3 min.
    ///
    /// # Panics
    ///
    /// Panics if `vehicles == 0` (the RWP layer needs nodes).
    pub fn new(vehicles: usize, pedestrians: usize, duration: f64, seed: u64) -> Self {
        CityScenario {
            rwp: RandomWaypoint::default_config(vehicles),
            detection: ContactDetection::Auto,
            population: Population::random(
                pedestrians,
                &Population::fig6_radix(),
                seed ^ SOCIAL_SEED_OFFSET,
            ),
            social: SocialContactModel::default_config(),
            weights: None,
            boardings_per_pedestrian: 2,
            boarding_rate: 1.0 / 600.0,
            boarding_mean_duration: 180.0,
            duration,
            seed,
        }
    }

    /// Number of vehicles (also the id offset of the first pedestrian).
    pub fn vehicle_count(&self) -> usize {
        self.rwp.n
    }

    /// Number of pedestrians.
    pub fn pedestrian_count(&self) -> usize {
        self.population.len()
    }

    /// The boarding pair list: for each pedestrian, its
    /// `boardings_per_pedestrian` distinct vehicles, drawn from the
    /// derived bridge seed. Deterministic per scenario.
    fn boarding_pairs(&self) -> Vec<(usize, usize, f64)> {
        let nv = self.vehicle_count();
        let np = self.pedestrian_count();
        let k = self.boardings_per_pedestrian.min(nv);
        let mut rng = StdRng::seed_from_u64(self.seed ^ BRIDGE_SEED_OFFSET);
        let mut pairs = Vec::with_capacity(np * k);
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for p in 0..np {
            chosen.clear();
            while chosen.len() < k {
                let v = rng.gen_range(0..nv);
                // Distinct vehicles per pedestrian, else the pair process
                // would run twice for one pair and overlap itself.
                if !chosen.contains(&v) {
                    chosen.push(v);
                }
            }
            for &v in &chosen {
                pairs.push((nv + p, v, self.boarding_rate));
            }
        }
        pairs
    }
}

impl ContactStream for CityScenario {
    fn node_count(&self) -> usize {
        self.vehicle_count() + self.pedestrian_count()
    }

    fn duration(&self) -> f64 {
        self.duration
    }

    fn for_each_contact(&self, emit: &mut dyn FnMut(ContactEvent)) {
        // Vehicle layer: ids already 0-based.
        RwpStream::bounded(self.rwp, self.duration, self.seed)
            .with_detection(self.detection)
            .for_each_contact(emit);
        // Pedestrian layer: offset ids past the vehicles.
        if self.pedestrian_count() > 0 {
            let nv = self.vehicle_count();
            let mut social = SocialStream::new(
                self.social,
                &self.population,
                self.duration,
                self.seed ^ SOCIAL_SEED_OFFSET,
            );
            if let Some(w) = &self.weights {
                social = social.with_weights(w.clone());
            }
            social.for_each_contact(&mut |e| {
                emit(ContactEvent { u: e.u + nv, v: e.v + nv, start: e.start, end: e.end })
            });
            // Boarding layer: pedestrian-to-vehicle pairs.
            if self.boardings_per_pedestrian > 0 && self.boarding_rate > 0.0 {
                PairPoissonStream::new(
                    self.node_count(),
                    self.boarding_pairs(),
                    self.boarding_mean_duration,
                    self.duration,
                    self.seed ^ BRIDGE_SEED_OFFSET,
                )
                .for_each_contact(emit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_trace_is_well_formed_and_seeded() {
        let city = CityScenario::new(30, 20, 400.0, 7);
        let t = city.collect_trace();
        assert!(t.is_well_formed());
        assert_eq!(t.node_count(), 50);
        assert_eq!(t, CityScenario::new(30, 20, 400.0, 7).collect_trace());
        assert_ne!(t, CityScenario::new(30, 20, 400.0, 8).collect_trace());
    }

    #[test]
    fn all_three_layers_contribute() {
        let city = CityScenario::new(40, 30, 2_000.0, 3);
        let nv = city.vehicle_count();
        let (mut vv, mut pp, mut pv) = (0usize, 0usize, 0usize);
        city.for_each_contact(&mut |e| match (e.u < nv, e.v < nv) {
            (true, true) => vv += 1,
            (false, false) => pp += 1,
            _ => pv += 1,
        });
        assert!(vv > 0, "no vehicle-vehicle contacts");
        assert!(pp > 0, "no pedestrian-pedestrian contacts");
        assert!(pv > 0, "no boarding contacts");
    }

    #[test]
    fn detection_backend_is_invisible() {
        let mut a = CityScenario::new(25, 10, 300.0, 5);
        a.detection = ContactDetection::Naive;
        let mut b = CityScenario::new(25, 10, 300.0, 5);
        b.detection = ContactDetection::Grid;
        assert_eq!(a.collect_trace(), b.collect_trace());
    }

    #[test]
    fn boarding_pairs_are_distinct_and_in_range() {
        let city = CityScenario::new(5, 50, 100.0, 1);
        let pairs = city.boarding_pairs();
        assert_eq!(pairs.len(), 50 * 2);
        let mut seen = std::collections::HashSet::new();
        for &(p, v, _) in &pairs {
            assert!((5..55).contains(&p) && v < 5);
            assert!(seen.insert((p, v)), "repeated boarding pair");
        }
    }

    #[test]
    fn weighted_city_is_well_formed() {
        let mut city = CityScenario::new(20, 15, 500.0, 9);
        city.weights = Some((0..15).map(|i| 0.5 + (i % 3) as f64).collect());
        assert!(city.collect_trace().is_well_formed());
    }
}
