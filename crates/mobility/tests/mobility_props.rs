//! Property tests for the mobility generators (ISSUE 10, satellite 5).
//!
//! Every generated trace — bounded RWP, unbounded RWP, social Poisson, and
//! the composed city scenario — must be *well-formed* (events inside
//! `[0, duration]`, no per-pair overlap, canonical `(start, u, v)` order)
//! and *byte-identical across re-runs of the same seed*; and the
//! grid-indexed contact detector must match the all-pairs scan exactly.

use csn_mobility::rwp::{ContactDetection, RandomWaypoint};
use csn_mobility::scenario::CityScenario;
use csn_mobility::social::{Population, SocialContactModel};
use csn_mobility::stream::{ContactStream, RwpStream};
use proptest::prelude::*;

fn rwp_model(n: usize, range: f64) -> RandomWaypoint {
    let mut m = RandomWaypoint::default_config(n);
    m.range = range;
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bounded_rwp_traces_are_well_formed_and_deterministic(
        n in 2usize..40,
        range in 0.02f64..0.3,
        // Mostly-fractional horizons exercise the duration clamp.
        duration in 20.0f64..120.0,
        seed in 0u64..1_000,
    ) {
        let m = rwp_model(n, range);
        let t = m.simulate(duration, seed);
        prop_assert!(t.is_well_formed(), "ill-formed bounded trace");
        prop_assert_eq!(&t, &m.simulate(duration, seed));
        for e in t.events() {
            prop_assert!(e.start >= 0.0 && e.end <= duration);
        }
    }

    #[test]
    fn unbounded_rwp_traces_are_well_formed_and_deterministic(
        n in 2usize..30,
        duration in 20.0f64..100.0,
        trip in 0.05f64..0.5,
        seed in 0u64..1_000,
    ) {
        let m = rwp_model(n, 0.1);
        let t = m.simulate_unbounded(duration, trip, trip * 2.0, seed);
        prop_assert!(t.is_well_formed(), "ill-formed unbounded trace");
        prop_assert_eq!(&t, &m.simulate_unbounded(duration, trip, trip * 2.0, seed));
    }

    #[test]
    fn social_traces_are_well_formed_and_deterministic(
        n in 2usize..25,
        duration in 1_000.0f64..20_000.0,
        seed in 0u64..1_000,
    ) {
        let pop = Population::random(n, &Population::fig6_radix(), seed ^ 0xabcd);
        let m = SocialContactModel::default_config();
        let t = m.simulate(&pop, duration, seed);
        prop_assert!(t.is_well_formed(), "ill-formed social trace");
        prop_assert_eq!(&t, &m.simulate(&pop, duration, seed));
    }

    #[test]
    fn city_traces_are_well_formed_and_deterministic(
        vehicles in 2usize..30,
        pedestrians in 0usize..20,
        duration in 50.0f64..400.0,
        seed in 0u64..1_000,
    ) {
        let city = CityScenario::new(vehicles, pedestrians, duration, seed);
        let t = city.collect_trace();
        prop_assert!(t.is_well_formed(), "ill-formed city trace");
        prop_assert_eq!(&t, &city.collect_trace(), "stream must replay identically");
        prop_assert_eq!(t.events().len(), city.count_contacts());
    }

    #[test]
    fn grid_detection_is_bitwise_identical_to_all_pairs(
        n in 2usize..50,
        range in 0.02f64..0.4,
        duration in 20.0f64..100.0,
        seed in 0u64..1_000,
    ) {
        let m = rwp_model(n, range);
        let naive = m.simulate_with(duration, seed, ContactDetection::Naive);
        let grid = m.simulate_with(duration, seed, ContactDetection::Grid);
        prop_assert_eq!(naive, grid, "bounded grid diverged from all-pairs scan");
        let naive_u = m.simulate_unbounded_with(
            duration, 0.05, 0.3, seed, ContactDetection::Naive);
        let grid_u = m.simulate_unbounded_with(
            duration, 0.05, 0.3, seed, ContactDetection::Grid);
        prop_assert_eq!(naive_u, grid_u, "sparse grid diverged from all-pairs scan");
    }

    #[test]
    fn streaming_collection_matches_eager_paths(
        n in 2usize..25,
        duration in 20.0f64..100.0,
        seed in 0u64..1_000,
    ) {
        let m = rwp_model(n, 0.12);
        let stream = RwpStream::bounded(m, duration, seed);
        prop_assert_eq!(stream.collect_trace(), m.simulate(duration, seed));
        let eg = stream.to_time_evolving_graph(1.0);
        let eg_via_trace = m.simulate(duration, seed).to_time_evolving_graph(1.0);
        prop_assert_eq!(eg.contacts(), eg_via_trace.contacts());
    }
}
