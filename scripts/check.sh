#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, docs, tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline --quiet

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> perf smoke (serial vs parallel kernels bit-identical; timings to BENCH_csr.json)"
cargo run -p csn-bench --release --offline --quiet --bin perf_smoke

echo "OK: fmt, clippy, doc, test, perf smoke all clean"
