#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, docs, tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline --quiet

echo "==> cargo test"
# Includes the e26 resilience snapshot gate (serial == parallel rendered
# text) and the fault_props + parallel_props proptest suites in csn-distsim
# (jobs-invariance of the deterministic wave-merged stepper).
cargo test --workspace --offline -q

echo "==> cargo test -p csn-distsim --release (misroute validation without debug asserts)"
cargo test -p csn-distsim --release --offline -q

echo "==> BENCH_kernels.json schema freshness"
# Must run BEFORE the smoke regenerates the file: the committed artifact has
# to carry the schema version the current perf_smoke source writes.
want=$(grep -oE 'structura-bench-kernels-v[0-9]+' crates/bench/src/bin/perf_smoke.rs | head -n1)
have=$(grep -oE 'structura-bench-kernels-v[0-9]+' BENCH_kernels.json | head -n1 || true)
if [ "$want" != "$have" ]; then
  echo "FAIL: BENCH_kernels.json is stale (has '${have:-missing}', perf_smoke writes '$want')" >&2
  echo "      regenerate with: cargo run -p csn-bench --release --bin perf_smoke" >&2
  exit 1
fi

echo "==> BENCH_scale.json schema freshness"
want=$(grep -oE 'structura-bench-scale-v[0-9]+' crates/bench/src/bin/perf_smoke.rs | head -n1)
have=$(grep -oE 'structura-bench-scale-v[0-9]+' BENCH_scale.json | head -n1 || true)
if [ "$want" != "$have" ]; then
  echo "FAIL: BENCH_scale.json is stale (has '${have:-missing}', perf_smoke writes '$want')" >&2
  echo "      regenerate with: cargo run -p csn-bench --release --bin perf_smoke -- --scale" >&2
  exit 1
fi

echo "==> BENCH_serve.json schema freshness"
want=$(grep -oE 'structura-bench-serve-v[0-9]+' crates/bench/src/serve_bench.rs | head -n1)
have=$(grep -oE 'structura-bench-serve-v[0-9]+' BENCH_serve.json | head -n1 || true)
if [ "$want" != "$have" ]; then
  echo "FAIL: BENCH_serve.json is stale (has '${have:-missing}', serve_bench writes '$want')" >&2
  echo "      regenerate with: cargo run -p csn-bench --release --bin perf_smoke -- --serve" >&2
  exit 1
fi

echo "==> BENCH_distsim.json schema freshness"
want=$(grep -oE 'structura-bench-distsim-v[0-9]+' crates/bench/src/distsim_bench.rs | head -n1)
have=$(grep -oE 'structura-bench-distsim-v[0-9]+' BENCH_distsim.json | head -n1 || true)
if [ "$want" != "$have" ]; then
  echo "FAIL: BENCH_distsim.json is stale (has '${have:-missing}', distsim_bench writes '$want')" >&2
  echo "      regenerate with: cargo run -p csn-bench --release --bin perf_smoke -- --distsim" >&2
  exit 1
fi

echo "==> BENCH_scenario.json schema freshness"
want=$(grep -oE 'structura-bench-scenario-v[0-9]+' crates/bench/src/scenario_bench.rs | head -n1)
have=$(grep -oE 'structura-bench-scenario-v[0-9]+' BENCH_scenario.json | head -n1 || true)
if [ "$want" != "$have" ]; then
  echo "FAIL: BENCH_scenario.json is stale (has '${have:-missing}', scenario_bench writes '$want')" >&2
  echo "      regenerate with: cargo run -p csn-bench --release --bin perf_smoke -- --scenario" >&2
  exit 1
fi

echo "==> perf smoke (scratch/parallel/cursor kernels bit-identical; incremental maintainers equal scratch with strictly fewer counted touches; timings to BENCH_csr.json + BENCH_kernels.json)"
cargo run -p csn-bench --release --offline --quiet --bin perf_smoke

echo "==> scale smoke (small-n: streamed CSR + sampled-kernel ε-gates; committed BENCH_scale.json untouched)"
cargo run -p csn-bench --release --offline --quiet --bin perf_smoke -- \
  --scale --scale-nodes 20000 --scale-out target/BENCH_scale_check.json

echo "==> serve smoke (small-n: landmark sandwich + exact-fallback + batched==serial + trace replay; committed BENCH_serve.json untouched)"
cargo run -p csn-bench --release --offline --quiet --bin perf_smoke -- \
  --serve --serve-nodes 4000 --serve-out target/BENCH_serve_check.json

echo "==> distsim smoke (small-n: parallel rounds bitwise == serial for flood/BF/MIS/CDS + faulted determinism; committed BENCH_distsim.json untouched)"
cargo run -p csn-bench --release --offline --quiet --bin perf_smoke -- \
  --distsim --distsim-nodes 2000 --distsim-out target/BENCH_distsim_check.json

echo "==> scenario smoke (small-n: grid==naive contact detection, trace well-formedness, slice DTN == EG DTN, pub-sub + hypercube under faults; committed BENCH_scenario.json untouched)"
cargo run -p csn-bench --release --offline --quiet --bin perf_smoke -- \
  --scenario --scenario-nodes 220 --scenario-pubsub-nodes 3000 \
  --scenario-out target/BENCH_scenario_check.json

echo "OK: fmt, clippy, doc, test, perf smoke, scale smoke, serve smoke, distsim smoke, scenario smoke all clean"
