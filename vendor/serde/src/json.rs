//! JSON text rendering for [`crate::Value`] trees.

use crate::{Serialize, Value};

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    out
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    out
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats distinguishable from integers.
                if *f == f.trunc() && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_group(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(&items[i], out, indent, depth + 1);
        }),
        Value::Map(fields) => write_group(out, indent, depth, '{', '}', fields.len(), |out, i| {
            let (k, v) = &fields[i];
            write_string(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(v, out, indent, depth + 1);
        }),
    }
}

fn write_group(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn renders_compact_json() {
        let v = Value::Map(vec![
            ("id".into(), Value::Str("e1".into())),
            ("n".into(), Value::UInt(3)),
            ("ratio".into(), Value::Float(0.5)),
            ("tags".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(to_string(&v), r#"{"id":"e1","n":3,"ratio":0.5,"tags":[true,null]}"#);
    }

    #[test]
    fn pretty_print_indents_nested_structures() {
        let v = Value::Map(vec![("xs".into(), Value::Seq(vec![Value::UInt(1)]))]);
        assert_eq!(to_string_pretty(&v), "{\n  \"xs\": [\n    1\n  ]\n}");
    }

    #[test]
    fn escapes_control_characters_and_quotes() {
        let v = Value::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(to_string(&v), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64), "2.0");
    }
}
