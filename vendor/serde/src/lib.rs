//! # serde (offline stand-in)
//!
//! This workspace builds in a network-isolated environment, so the real
//! `serde` crate cannot be fetched. This crate provides the data-model
//! subset structura actually needs: a [`Serialize`] trait rendering any
//! value into a self-describing [`Value`] tree, a [`Deserialize`] marker,
//! and `#[derive(Serialize, Deserialize)]` for plain structs with named
//! fields (via the companion `serde_derive` proc-macro, enabled by the
//! `derive` feature exactly like upstream).
//!
//! The deliberate simplification: instead of upstream's
//! `serialize<S: Serializer>` visitor plumbing, [`Serialize`] produces a
//! [`Value`], and [`json`] renders a `Value` as JSON text. Every type that
//! derives `Serialize` here would also derive it upstream, so migrating to
//! the real crate is only a `Cargo.toml` change plus swapping
//! `serde::json::to_string` call sites for `serde_json`.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// A self-describing tree of serialized data (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point. Non-finite values render as JSON `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered map (field order is preserved).
    Map(Vec<(String, Value)>),
}

/// Conversion into the serialized data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Marker for types that opt into deserialization.
///
/// The offline stand-in does not implement parsing; the derive exists so
/// upstream-compatible `#[derive(Serialize, Deserialize)]` attributes
/// compile unchanged.
pub trait Deserialize: Sized {}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {}
    )+};
}
impl_serialize_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers_map_to_expected_values() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-2i64).to_value(), Value::Int(-2));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![(1usize, 2.5f64)].to_value(),
            Value::Seq(vec![Value::Seq(vec![Value::UInt(1), Value::Float(2.5)])])
        );
    }
}
