//! # proptest (offline stand-in)
//!
//! This workspace builds in a network-isolated environment, so the real
//! `proptest` crate cannot be fetched. This crate implements the subset
//! structura's property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`], the
//! [`proptest!`] macro (including `#![proptest_config(..)]`), and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   panic message (every case runs under a fixed, printed seed), but it is
//!   not minimized.
//! * **Deterministic seeding.** Cases derive from a fixed seed so CI is
//!   reproducible; set `PROPTEST_SEED` to explore a different stream.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;

/// Re-exports matching `proptest::prelude::*` as structura uses it.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Runner configuration (`cases` is the only knob the stand-in honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// The RNG handed to strategies. Public because the [`proptest!`] macro
/// expansion constructs it in the test body.
pub type TestRng = StdRng;

/// Builds the RNG for one test, honoring `PROPTEST_SEED`.
pub fn test_rng(test_name: &str) -> TestRng {
    let base: u64 =
        std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x5EED_CAFE);
    // Mix the test name in so different tests see different streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(base ^ h)
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples the
    /// result (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: rand::SampleUniform + PartialOrd + Copy,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: rand::SampleUniform + PartialOrd + Copy,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

/// Asserts a property inside a [`proptest!`] body (plain `assert!` with the
/// case context attached by the runner's panic hook).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..)`
/// becomes a standard `#[test]` running `cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..config.cases {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest stand-in: case {case}/{} of `{}` failed \
                         (set PROPTEST_SEED to vary the stream)",
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_even(limit: usize) -> impl Strategy<Value = usize> {
        (0..limit).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5usize..10) {
            prop_assert!((5..10).contains(&x));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0usize..4, 0.0f64..1.0)) {
            prop_assert!(pair.0 < 4 && pair.1 < 1.0);
        }

        #[test]
        fn flat_map_feeds_dependent_strategies(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0..n, 1..4).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            prop_assert!(xs.iter().all(|&x| x < n));
        }

        #[test]
        fn mapped_strategies_apply(x in arb_even(10)) {
            prop_assert_eq!(x % 2, 0);
        }
    }
}
