//! Collection strategies ([`vec()`]).

use crate::{Strategy, TestRng};

/// Strategy for a `Vec` whose length is drawn from `len` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    len: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rand::Rng::gen_range(rng, self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
