//! # rand (offline stand-in)
//!
//! This workspace builds in a network-isolated environment, so the real
//! `rand` crate cannot be fetched. This crate re-implements the **exact API
//! subset structura uses** — [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] (`seed_from_u64`, `from_seed`), [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`) — with the same signatures, so
//! swapping the real crate back in is a one-line change in the workspace
//! `Cargo.toml`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64. It is deterministic and high-quality for simulation work, but
//! it is **not** the ChaCha12 stream upstream `rand 0.8` uses: seeds
//! reproduce runs against *this* crate, not against upstream captures. It is
//! also not cryptographically secure — fine for the experiments, wrong for
//! anything security-sensitive.

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words. Everything else derives from this.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (top half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` by expanding it with SplitMix64 —
    /// the conventional convenience constructor used throughout structura.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            for (b, w) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = w;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution of real
/// `rand`): uniform over the whole domain for integers and `bool`, uniform
/// in `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform sampler over an arbitrary sub-range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)` (`inclusive` widens to `[low, high]`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from empty range");
                // Modulo with rejection of the biased tail.
                let zone = u128::MAX - (u128::MAX - span + 1) % span;
                loop {
                    let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    if raw <= zone {
                        return (lo + (raw % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as Standard>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T` (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_unbiased_enough() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes_and_choose_picks_member() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        let mut rng = StdRng::seed_from_u64(4);
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(orig.contains(v.choose(&mut rng).unwrap()));
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
