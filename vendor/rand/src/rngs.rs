//! Concrete generators ([`StdRng`]).

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256**.
///
/// Unlike upstream `rand`'s ChaCha12-based `StdRng`, this generator is not
/// cryptographically secure; it is small, fast, and passes BigCrush, which
/// is what the simulations need.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(w);
        }
        // An all-zero state is a fixed point for xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }
}
