//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Supports the shapes structura actually derives on: plain (non-generic)
//! structs with named fields, plus fieldless enums. Anything else fails
//! with a compile error naming this crate, so a future reader immediately
//! knows the stand-in (not upstream serde) is the limitation.
//!
//! Written against `proc_macro` directly — no `syn`/`quote`, because the
//! build environment is offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the stand-in's `to_value` form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::FieldlessEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{}::{v} => serde::Value::Str(\"{v}\".to_string())", item.name))
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {} {{\n\
         \tfn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}",
        item.name
    )
    .parse()
    .expect("generated impl parses")
}

/// Derives the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("generated impl parses")
}

enum Shape {
    /// Field names of a braced struct.
    NamedStruct(Vec<String>),
    /// Variant names of a fieldless enum.
    FieldlessEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(crate)`).
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                if let Some(TokenTree::Group(_)) = tokens.peek() {
                    tokens.next(); // pub(crate) / pub(super)
                }
            }
            Some(TokenTree::Ident(i)) => {
                let s = i.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                panic!("serde stand-in derive: unexpected token `{s}` before struct/enum");
            }
            other => panic!("serde stand-in derive: unexpected input {other:?}"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stand-in derive: expected type name, got {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde stand-in derive does not support generic type `{name}`")
            }
            Some(_) => continue,
            None => panic!(
                "serde stand-in derive: `{name}` has no braced body (tuple/unit types unsupported)"
            ),
        }
    };
    let shape = if kind == "struct" {
        Shape::NamedStruct(parse_named_fields(body.stream()))
    } else {
        Shape::FieldlessEnum(parse_fieldless_variants(body.stream(), &name))
    };
    Item { name, shape }
}

/// Extracts field names from a named-struct body: for each top-level
/// (angle-bracket-aware) comma-separated chunk, the name is the identifier
/// immediately before the first top-level `:`.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut last_ident: Option<String> = None;
    let mut seen_colon = false;
    for tok in body {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {} // field attribute marker
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if angle_depth == 0 && !seen_colon => {
                    let name =
                        last_ident.take().expect("serde stand-in derive: field without a name");
                    fields.push(name);
                    seen_colon = true;
                }
                ',' if angle_depth == 0 => seen_colon = false,
                _ => {}
            },
            TokenTree::Ident(i) if !seen_colon => last_ident = Some(i.to_string()),
            _ => {}
        }
    }
    fields
}

/// Extracts variant names from an enum body, rejecting any variant that
/// carries data (a following group).
fn parse_fieldless_variants(body: TokenStream, enum_name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    while let Some(tok) = tokens.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // variant attribute group
            }
            TokenTree::Ident(i) => {
                if let Some(TokenTree::Group(_)) = tokens.peek() {
                    panic!(
                        "serde stand-in derive: enum `{enum_name}` variant `{i}` carries data; \
                         implement Serialize by hand"
                    );
                }
                variants.push(i.to_string());
            }
            _ => {}
        }
    }
    variants
}
