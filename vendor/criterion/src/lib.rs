//! # criterion (offline stand-in)
//!
//! This workspace builds in a network-isolated environment, so the real
//! `criterion` crate cannot be fetched. This crate keeps the bench targets
//! compiling and *useful*: the same `criterion_group!` / `criterion_main!` /
//! `Criterion` / `BenchmarkGroup` / `Bencher` surface, with a simple
//! honest-median timer instead of criterion's statistical machinery.
//!
//! Each benchmark warms up briefly, then runs enough iterations to fill a
//! short measurement window and reports the median per-iteration time on
//! stdout as `group/name ... <time>`. No HTML reports, no outlier analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench context, handed to every `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.default_sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with an input value, labeled by a [`BenchmarkId`].
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&label, self.sample_size, &mut g);
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// A benchmark label of the form `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Labels a benchmark `name/parameter`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// Labels a benchmark by its parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, storing one sample per outer run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(t0.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Calibration pass: how long does one invocation take?
    let mut cal = Bencher { samples: Vec::new(), iters_per_sample: 1 };
    f(&mut cal);
    let one = cal.samples.first().copied().unwrap_or(Duration::ZERO);
    // Aim for ~2 ms per sample so fast routines aren't all timer noise.
    let iters = if one < Duration::from_micros(100) {
        (Duration::from_millis(2).as_nanos() / one.as_nanos().max(1)).clamp(1, 10_000) as u64
    } else {
        1
    };
    let mut b = Bencher { samples: Vec::new(), iters_per_sample: iters };
    for _ in 0..sample_size {
        f(&mut b);
    }
    b.samples.sort_unstable();
    let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or(Duration::ZERO);
    println!("{label:<48} median {median:>12.3?}  ({sample_size} samples x {iters} iters)");
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(ran > 0);
    }
}
